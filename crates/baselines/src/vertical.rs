//! Vertical: the stepwise DHWT scan index (Kashyap & Karras, SIGKDD 2011).
//!
//! The dataset's Haar coefficients are stored *vertically*: all series'
//! level-0 coefficients first, then level 1, and so on. A query scans the
//! file one resolution level at a time, maintaining for every live
//! candidate a lower bound (the coefficient-prefix distance — valid by
//! Parseval) and an upper bound (triangle inequality on the remaining
//! energy; z-normalized series have total energy exactly `series_len`).
//! Candidates whose lower bound exceeds the best upper bound are pruned, so
//! later (larger) levels are only read for the survivors.
//!
//! Construction is a single sequential pass that transforms each chunk and
//! appends to each level's region — "a stepwise sequential-scan manner, one
//! level of resolution at a time" (paper Section 5).

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use coconut_series::dataset::Dataset;
use coconut_series::distance::euclidean_sq_early_abandon;
use coconut_series::index::{Answer, QueryStats, SeriesIndex};
use coconut_series::Value;
use coconut_storage::{CountedFile, Error, Result};
use coconut_summary::haar::{haar_transform, level_sizes, supported_len};

static VERTICAL_ID: AtomicU64 = AtomicU64::new(0);

/// Output of the stepwise scan: surviving candidate ids, per-series
/// squared prefix lower bounds, per-series prefix energies, and the number
/// of levels processed.
type StepwiseOutput = (Vec<u32>, Vec<f64>, Vec<f64>, usize);

/// The Vertical index.
pub struct VerticalIndex {
    dataset: Dataset,
    series_len: usize,
    n: u64,
    file: Arc<CountedFile>,
    /// Coefficients per level, coarse to fine.
    level_sizes: Vec<usize>,
    /// Byte offset of each level's region.
    level_offsets: Vec<u64>,
}

/// When more than this fraction of candidates is still alive, a level is
/// read with one sequential sweep instead of per-candidate seeks.
const SEQ_READ_THRESHOLD: f64 = 0.25;

impl VerticalIndex {
    /// Build over all of `dataset` (must be z-normalized, power-of-two
    /// length).
    pub fn build(dataset: &Dataset, dir: &Path) -> Result<Self> {
        let series_len = dataset.series_len();
        if !supported_len(series_len) {
            return Err(Error::invalid(
                "Vertical requires a power-of-two series length (Haar transform)",
            ));
        }
        if !dataset.znormalized() {
            return Err(Error::invalid(
                "Vertical's upper bound assumes z-normalized series",
            ));
        }
        let id = VERTICAL_ID.fetch_add(1, Ordering::Relaxed);
        let stats = Arc::clone(dataset.file().stats());
        let file = Arc::new(CountedFile::create(
            dir.join(format!("vertical-{id}.idx")),
            stats,
        )?);
        let n = dataset.len();
        let sizes = level_sizes(series_len);
        let mut offsets = Vec::with_capacity(sizes.len());
        let mut acc = 0u64;
        for &s in &sizes {
            offsets.push(acc);
            acc += s as u64 * n * 4;
        }
        let index = VerticalIndex {
            dataset: dataset.clone(),
            series_len,
            n,
            file,
            level_sizes: sizes,
            level_offsets: offsets,
        };

        // One sequential pass; buffer per level per chunk, then append each
        // buffer to its region.
        let chunk_series = ((4 << 20) / (series_len * 4)).max(1);
        let mut level_bufs: Vec<Vec<u8>> = index.level_sizes.iter().map(|_| Vec::new()).collect();
        let mut scan = dataset.scan();
        let mut chunk_start = 0u64;
        let mut in_chunk = 0usize;
        while let Some((_, series)) = scan.next_series()? {
            let coeffs = haar_transform(series)?;
            let mut at = 0usize;
            for (li, &ls) in index.level_sizes.iter().enumerate() {
                for &c in &coeffs[at..at + ls] {
                    level_bufs[li].extend_from_slice(&(c as f32).to_le_bytes());
                }
                at += ls;
            }
            in_chunk += 1;
            if in_chunk == chunk_series {
                index.flush_levels(&mut level_bufs, chunk_start)?;
                chunk_start += in_chunk as u64;
                in_chunk = 0;
            }
        }
        if in_chunk > 0 {
            index.flush_levels(&mut level_bufs, chunk_start)?;
        }
        index.file.sync()?;
        Ok(index)
    }

    fn flush_levels(&self, bufs: &mut [Vec<u8>], first_series: u64) -> Result<()> {
        for (li, buf) in bufs.iter_mut().enumerate() {
            if buf.is_empty() {
                continue;
            }
            let offset = self.level_offsets[li] + first_series * self.level_sizes[li] as u64 * 4;
            self.file.write_all_at(buf, offset)?;
            buf.clear();
        }
        Ok(())
    }

    /// Number of series indexed.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Read level `li`'s coefficients for series `pos` into `out`.
    fn read_level_one(&self, li: usize, pos: u64, out: &mut [f32]) -> Result<()> {
        let ls = self.level_sizes[li];
        debug_assert_eq!(out.len(), ls);
        let mut bytes = vec![0u8; ls * 4];
        self.file
            .read_exact_at(&mut bytes, self.level_offsets[li] + pos * ls as u64 * 4)?;
        for (o, c) in out.iter_mut().zip(bytes.chunks_exact(4)) {
            *o = f32::from_le_bytes(c.try_into().unwrap());
        }
        Ok(())
    }

    /// The stepwise scan shared by approximate and exact search. Returns
    /// `(live candidates with exact-prefix lower bounds, stats)` after
    /// processing `max_levels` levels.
    fn stepwise(
        &self,
        query_coeffs: &[f64],
        max_levels: usize,
        stats: &mut QueryStats,
    ) -> Result<StepwiseOutput> {
        let n = self.n as usize;
        let mut alive: Vec<u32> = (0..n as u32).collect();
        let mut lb_sq = vec![0.0f64; n];
        let mut s_energy = vec![0.0f64; n]; // prefix energy of each candidate
        let total_energy = self.series_len as f64; // z-normalized
        let mut q_prefix_energy = 0.0f64;
        let q_total: f64 = query_coeffs.iter().map(|&c| c * c).sum();
        let mut at = 0usize;
        let mut levels_done = 0usize;

        for (li, &ls) in self.level_sizes.iter().enumerate().take(max_levels) {
            let qs = &query_coeffs[at..at + ls];
            let frac = alive.len() as f64 / n.max(1) as f64;
            if frac > SEQ_READ_THRESHOLD {
                // Sequential sweep over the whole level region.
                let mut bytes = vec![0u8; n * ls * 4];
                if !bytes.is_empty() {
                    self.file
                        .read_exact_at(&mut bytes, self.level_offsets[li])?;
                }
                for &cand in &alive {
                    let base = cand as usize * ls * 4;
                    for (k, &qc) in qs.iter().enumerate() {
                        let c = f32::from_le_bytes(
                            bytes[base + 4 * k..base + 4 * k + 4].try_into().unwrap(),
                        ) as f64;
                        let d = qc - c;
                        lb_sq[cand as usize] += d * d;
                        s_energy[cand as usize] += c * c;
                    }
                }
            } else {
                // Random reads for the survivors only.
                let mut coeffs = vec![0.0f32; ls];
                for &cand in &alive {
                    self.read_level_one(li, cand as u64, &mut coeffs)?;
                    for (k, &qc) in qs.iter().enumerate() {
                        let c = coeffs[k] as f64;
                        let d = qc - c;
                        lb_sq[cand as usize] += d * d;
                        s_energy[cand as usize] += c * c;
                    }
                }
            }
            stats.lower_bounds += alive.len() as u64;
            at += ls;
            q_prefix_energy += qs.iter().map(|&c| c * c).sum::<f64>();
            levels_done = li + 1;

            // Upper bounds from the unseen energy; prune by the best UB.
            let q_rest = (q_total - q_prefix_energy).max(0.0).sqrt();
            let mut best_ub = f64::INFINITY;
            for &cand in &alive {
                let s_rest = (total_energy - s_energy[cand as usize]).max(0.0).sqrt();
                let cross = q_rest + s_rest;
                let ub = (lb_sq[cand as usize] + cross * cross).sqrt();
                best_ub = best_ub.min(ub);
            }
            let before = alive.len();
            alive.retain(|&c| lb_sq[c as usize].sqrt() <= best_ub + 1e-9);
            stats.pruned += (before - alive.len()) as u64;
            if alive.len() <= 1 {
                break;
            }
        }
        Ok((alive, lb_sq, s_energy, levels_done))
    }

    /// Approximate search: run the stepwise scan over the first few levels,
    /// then verify the most promising candidate against the raw data.
    pub fn approximate_search(&self, query: &[Value]) -> Result<Answer> {
        if query.len() != self.series_len {
            return Err(Error::invalid("query length mismatch"));
        }
        if self.is_empty() {
            return Ok(Answer::none());
        }
        let coeffs = haar_transform(query)?;
        let mut stats = QueryStats::default();
        // Enough levels to see 16 coefficients (or everything for tiny
        // series).
        let levels = self
            .level_sizes
            .iter()
            .scan(0usize, |acc, &s| {
                *acc += s;
                Some(*acc)
            })
            .position(|seen| seen >= 16.min(self.series_len))
            .map_or(self.level_sizes.len(), |p| p + 1);
        let (alive, lb_sq, _, _) = self.stepwise(&coeffs, levels, &mut stats)?;
        let best = alive
            .iter()
            .min_by(|&&a, &&b| lb_sq[a as usize].total_cmp(&lb_sq[b as usize]))
            .copied();
        let Some(cand) = best else {
            return Ok(Answer::none());
        };
        let series = self.dataset.get(cand as u64)?;
        let d_sq = coconut_series::distance::euclidean_sq(query, &series);
        Ok(Answer {
            pos: cand as u64,
            dist: d_sq.sqrt(),
        })
    }

    /// Exact search: the full stepwise scan, then raw verification of the
    /// survivors.
    pub fn exact_search(&self, query: &[Value]) -> Result<(Answer, QueryStats)> {
        if query.len() != self.series_len {
            return Err(Error::invalid("query length mismatch"));
        }
        let mut stats = QueryStats::default();
        if self.is_empty() {
            return Ok((Answer::none(), stats));
        }
        let coeffs = haar_transform(query)?;
        let (mut alive, lb_sq, _, _) =
            self.stepwise(&coeffs, self.level_sizes.len(), &mut stats)?;
        // Verify survivors against raw data, most promising first.
        alive.sort_by(|&a, &b| lb_sq[a as usize].total_cmp(&lb_sq[b as usize]));
        let mut best = Answer::none();
        let mut best_sq = f64::INFINITY;
        let mut buf = vec![0.0 as Value; self.series_len];
        for &cand in &alive {
            if lb_sq[cand as usize] > best_sq {
                stats.pruned += 1;
                continue;
            }
            self.dataset.read_into(cand as u64, &mut buf)?;
            stats.records_fetched += 1;
            if let Some(d_sq) = euclidean_sq_early_abandon(query, &buf, best_sq) {
                if d_sq < best_sq {
                    best_sq = d_sq;
                    best = Answer {
                        pos: cand as u64,
                        dist: d_sq.sqrt(),
                    };
                }
            }
        }
        Ok((best, stats))
    }
}

impl SeriesIndex for VerticalIndex {
    fn name(&self) -> String {
        "Vertical".into()
    }

    fn approximate(&self, query: &[Value]) -> Result<Answer> {
        self.approximate_search(query)
    }

    fn exact(&self, query: &[Value]) -> Result<(Answer, QueryStats)> {
        self.exact_search(query)
    }

    fn disk_bytes(&self) -> u64 {
        self.file.len()
    }

    fn leaf_count(&self) -> u64 {
        0 // a scan index has no tree structure
    }

    fn avg_leaf_fill(&self) -> f64 {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconut_series::dataset::write_dataset;
    use coconut_series::distance::{euclidean, znormalize};
    use coconut_series::gen::{Generator, RandomWalkGen};
    use coconut_storage::{IoStats, TempDir};

    const LEN: usize = 64;

    fn make_dataset(dir: &TempDir, n: u64) -> Dataset {
        let stats = Arc::new(IoStats::new());
        let path = dir.path().join("data.bin");
        write_dataset(&path, &mut RandomWalkGen::new(83), n, LEN, &stats).unwrap();
        Dataset::open(&path, stats).unwrap()
    }

    fn brute_force(ds: &Dataset, q: &[Value]) -> Answer {
        let mut best = Answer::none();
        let mut scan = ds.scan();
        while let Some((pos, s)) = scan.next_series().unwrap() {
            best.merge(Answer {
                pos,
                dist: euclidean(q, s),
            });
        }
        best
    }

    fn query(seed: u64) -> Vec<Value> {
        let mut q = RandomWalkGen::new(seed).generate(LEN);
        znormalize(&mut q);
        q
    }

    #[test]
    fn index_size_matches_dataset_payload() {
        let dir = TempDir::new("vertical").unwrap();
        let ds = make_dataset(&dir, 100);
        let v = VerticalIndex::build(&ds, dir.path()).unwrap();
        assert_eq!(v.disk_bytes(), ds.payload_bytes());
    }

    #[test]
    fn exact_matches_brute_force() {
        let dir = TempDir::new("vertical").unwrap();
        let ds = make_dataset(&dir, 400);
        let v = VerticalIndex::build(&ds, dir.path()).unwrap();
        for seed in 0..10 {
            let q = query(seed);
            let (ans, _) = v.exact_search(&q).unwrap();
            let expect = brute_force(&ds, &q);
            assert_eq!(ans.pos, expect.pos, "seed {seed}");
            assert!((ans.dist - expect.dist).abs() < 1e-4);
        }
    }

    #[test]
    fn pruning_reduces_fetches() {
        let dir = TempDir::new("vertical").unwrap();
        let ds = make_dataset(&dir, 500);
        let v = VerticalIndex::build(&ds, dir.path()).unwrap();
        let q = query(20);
        let (_, stats) = v.exact_search(&q).unwrap();
        assert!(
            stats.records_fetched < 500 / 2,
            "stepwise pruning too weak: fetched {}",
            stats.records_fetched
        );
    }

    #[test]
    fn approximate_never_beats_exact() {
        let dir = TempDir::new("vertical").unwrap();
        let ds = make_dataset(&dir, 300);
        let v = VerticalIndex::build(&ds, dir.path()).unwrap();
        for seed in 30..36 {
            let q = query(seed);
            let approx = v.approximate_search(&q).unwrap();
            let (exact, _) = v.exact_search(&q).unwrap();
            assert!(exact.dist <= approx.dist + 1e-9);
        }
    }

    #[test]
    fn rejects_non_power_of_two() {
        let dir = TempDir::new("vertical").unwrap();
        let stats = Arc::new(IoStats::new());
        let path = dir.path().join("odd.bin");
        write_dataset(&path, &mut RandomWalkGen::new(1), 10, 100, &stats).unwrap();
        let ds = Dataset::open(&path, stats).unwrap();
        assert!(VerticalIndex::build(&ds, dir.path()).is_err());
    }

    #[test]
    fn empty_dataset() {
        let dir = TempDir::new("vertical").unwrap();
        let ds = make_dataset(&dir, 0);
        let v = VerticalIndex::build(&ds, dir.path()).unwrap();
        assert!(v.is_empty());
        let q = query(3);
        let (ans, _) = v.exact_search(&q).unwrap();
        assert!(!ans.is_some());
    }
}
