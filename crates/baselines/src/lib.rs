//! State-of-the-art baselines the paper compares Coconut against.
//!
//! Everything here is implemented from scratch on the same substrates
//! (`coconut-series`, `coconut-summary`, `coconut-storage`) so that build
//! and query costs are measured in the same disk-access model:
//!
//! * [`scan::SerialScan`] — brute force; the ground truth for tests and the
//!   "no index" reference point.
//! * [`isax2::Isax2Index`] — classic top-down iSAX 2.0: buffered inserts,
//!   prefix splits, non-contiguous leaves (paper Section 3.1, Figure 3).
//! * [`ads::AdsIndex`] — the ADS family (the paper's main competitor):
//!   `ADSFull` (clustered, two passes) and `ADS+` (adaptive, summarization
//!   only), both answering exact queries with SIMS.
//! * [`rtree::RTreeIndex`] — an R-tree over PAA points bulk-loaded with the
//!   Sort-Tile-Recursive algorithm; materialized and `R-tree+` variants.
//! * [`dstree::DsTree`] — the data-adaptive segmentation tree (EAPCA
//!   synopsis, mean/std splits, top-down inserts).
//! * [`vertical::VerticalIndex`] — the stepwise DHWT scan index that stores
//!   Haar coefficients resolution by resolution.

pub mod ads;
pub mod dstree;
pub mod heap;
pub mod isax2;
pub mod prefixtree;
pub mod rtree;
pub mod scan;
pub mod vertical;

pub use ads::{AdsIndex, AdsVariant};
pub use coconut_storage::{Error, Result};
pub use dstree::DsTree;
pub use isax2::Isax2Index;
pub use rtree::RTreeIndex;
pub use scan::SerialScan;
pub use vertical::VerticalIndex;
