//! R-tree over PAA points, bulk-loaded with Sort-Tile-Recursive (STR).
//!
//! The paper's R-tree baseline indexes each series' PAA vector as a
//! `w`-dimensional point (Guttman's R-tree, STR packing of Leutenegger et
//! al.). STR sorts by the first dimension into slabs, then recursively by
//! the next dimension within each slab — construction work is proportional
//! to the number of dimensions, the O(N·D) behaviour the paper contrasts
//! with Coconut's single interleaved sort. The materialized variant stores
//! raw series in the leaves (fetched in STR order — random I/O over the
//! raw file); `R-tree+` keeps positions only.
//!
//! The PAA lower bound `sqrt(len/w) * ||PAA(q) - p||` ≤ `ED(q, s)` extends
//! to minimum distances against node MBRs, which gives correct best-first
//! exact search.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use coconut_series::dataset::Dataset;
use coconut_series::distance::euclidean_sq_early_abandon;
use coconut_series::index::{Answer, QueryStats, SeriesIndex};
use coconut_series::Value;
use coconut_storage::{CountedFile, Error, Result};
use coconut_summary::paa::{paa, paa_into};
use coconut_summary::SaxConfig;

use crate::heap::MinHeap;

static RTREE_ID: AtomicU64 = AtomicU64::new(0);

/// A minimum bounding rectangle in PAA space.
#[derive(Debug, Clone, PartialEq)]
pub struct Mbr {
    lo: Vec<f32>,
    hi: Vec<f32>,
}

impl Mbr {
    fn empty(dims: usize) -> Self {
        Mbr {
            lo: vec![f32::INFINITY; dims],
            hi: vec![f32::NEG_INFINITY; dims],
        }
    }

    fn add_point(&mut self, p: &[f32]) {
        for ((lo, hi), &v) in self.lo.iter_mut().zip(self.hi.iter_mut()).zip(p.iter()) {
            *lo = lo.min(v);
            *hi = hi.max(v);
        }
    }

    fn add_mbr(&mut self, other: &Mbr) {
        for ((lo, hi), (&olo, &ohi)) in self
            .lo
            .iter_mut()
            .zip(self.hi.iter_mut())
            .zip(other.lo.iter().zip(other.hi.iter()))
        {
            *lo = lo.min(olo);
            *hi = hi.max(ohi);
        }
    }

    /// Squared distance from a query PAA to this rectangle (0 inside).
    fn mindist_sq(&self, q: &[f64]) -> f64 {
        let mut acc = 0.0f64;
        for ((&lo, &hi), &v) in self.lo.iter().zip(self.hi.iter()).zip(q.iter()) {
            let d = if v < lo as f64 {
                lo as f64 - v
            } else if v > hi as f64 {
                v - hi as f64
            } else {
                0.0
            };
            acc += d * d;
        }
        acc
    }
}

#[derive(Debug, Clone)]
struct RLeaf {
    mbr: Mbr,
    block: u32,
    count: u32,
}

#[derive(Debug, Clone)]
struct RNode {
    mbr: Mbr,
    /// Children occupy `child_start..child_start+child_count` in the level
    /// below (leaves for level 0).
    child_start: u32,
    child_count: u32,
}

/// Either a node in an internal level or a leaf (best-first queue item).
#[derive(Debug, Clone, Copy)]
enum Visit {
    Node { level: usize, idx: u32 },
    Leaf { idx: u32 },
}

/// The STR-bulk-loaded R-tree.
pub struct RTreeIndex {
    dataset: Dataset,
    sax: SaxConfig,
    materialized: bool,
    leaf_capacity: usize,
    fanout: usize,
    file: Arc<CountedFile>,
    leaves: Vec<RLeaf>,
    /// levels[0] groups leaves; the last level is the root list.
    levels: Vec<Vec<RNode>>,
}

impl RTreeIndex {
    fn entry_bytes(&self) -> usize {
        if self.materialized {
            8 + self.dataset.series_bytes()
        } else {
            8
        }
    }

    fn block_bytes(&self) -> usize {
        self.leaf_capacity * self.entry_bytes()
    }

    /// Bulk-load with STR over the PAA points of all series.
    pub fn build(
        dataset: &Dataset,
        sax: SaxConfig,
        leaf_capacity: usize,
        materialized: bool,
        dir: &Path,
    ) -> Result<Self> {
        sax.validate()?;
        if dataset.series_len() != sax.series_len {
            return Err(Error::invalid("dataset/config series length mismatch"));
        }
        if leaf_capacity == 0 {
            return Err(Error::invalid("leaf capacity must be positive"));
        }
        let id = RTREE_ID.fetch_add(1, Ordering::Relaxed);
        let stats = Arc::clone(dataset.file().stats());
        let file = Arc::new(CountedFile::create(
            dir.join(format!("rtree-{id}.idx")),
            stats,
        )?);

        let n = dataset.len() as usize;
        let dims = sax.segments;

        // Pass: compute all PAA points (one sequential scan).
        let mut points = vec![0.0f32; n * dims];
        {
            let mut scan = dataset.scan();
            let mut paa_buf = vec![0.0f64; dims];
            while let Some((pos, series)) = scan.next_series()? {
                paa_into(series, &mut paa_buf);
                let at = pos as usize * dims;
                for (i, &v) in paa_buf.iter().enumerate() {
                    points[at + i] = v as f32;
                }
            }
        }

        // STR: recursively sort by successive dimensions into tiles.
        let mut order: Vec<u32> = (0..n as u32).collect();
        str_partition(&mut order, &points, dims, 0, leaf_capacity);

        let mut tree = RTreeIndex {
            dataset: dataset.clone(),
            sax,
            materialized,
            leaf_capacity,
            fanout: 64,
            file,
            leaves: Vec::new(),
            levels: Vec::new(),
        };

        // Write leaves in STR order.
        let eb = tree.entry_bytes();
        let mut block_buf = vec![0u8; tree.block_bytes()];
        let mut series_buf = vec![0.0 as Value; sax.series_len];
        for (block, chunk) in order.chunks(leaf_capacity).enumerate() {
            let mut mbr = Mbr::empty(dims);
            block_buf.fill(0);
            for (slot, &pos32) in chunk.iter().enumerate() {
                let pos = pos32 as u64;
                mbr.add_point(&points[pos as usize * dims..(pos as usize + 1) * dims]);
                let at = slot * eb;
                block_buf[at..at + 8].copy_from_slice(&pos.to_le_bytes());
                if materialized {
                    // Fetching raw series in STR order: random reads — the
                    // honest cost of materializing an R-tree this way.
                    tree.dataset.read_into(pos, &mut series_buf)?;
                    for (i, &v) in series_buf.iter().enumerate() {
                        block_buf[at + 8 + 4 * i..at + 12 + 4 * i]
                            .copy_from_slice(&v.to_le_bytes());
                    }
                }
            }
            tree.file
                .write_all_at(&block_buf, block as u64 * tree.block_bytes() as u64)?;
            tree.leaves.push(RLeaf {
                mbr,
                block: block as u32,
                count: chunk.len() as u32,
            });
        }

        tree.build_internal_levels();
        Ok(tree)
    }

    fn build_internal_levels(&mut self) {
        if self.leaves.is_empty() {
            return;
        }
        let dims = self.sax.segments;
        let mut level: Vec<RNode> = self
            .leaves
            .chunks(self.fanout)
            .enumerate()
            .map(|(i, chunk)| {
                let mut mbr = Mbr::empty(dims);
                for l in chunk {
                    mbr.add_mbr(&l.mbr);
                }
                RNode {
                    mbr,
                    child_start: (i * self.fanout) as u32,
                    child_count: chunk.len() as u32,
                }
            })
            .collect();
        self.levels.push(level.clone());
        while level.len() > self.fanout {
            level = level
                .chunks(self.fanout)
                .enumerate()
                .map(|(i, chunk)| {
                    let mut mbr = Mbr::empty(dims);
                    for c in chunk {
                        mbr.add_mbr(&c.mbr);
                    }
                    RNode {
                        mbr,
                        child_start: (i * self.fanout) as u32,
                        child_count: chunk.len() as u32,
                    }
                })
                .collect();
            self.levels.push(level.clone());
        }
    }

    /// Whether raw series live in the leaves.
    pub fn is_materialized(&self) -> bool {
        self.materialized
    }

    /// Number of indexed entries.
    pub fn len(&self) -> u64 {
        self.leaves.iter().map(|l| l.count as u64).sum()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }

    /// Scale factor turning PAA-space distances into series-space bounds.
    fn paa_scale(&self) -> f64 {
        self.sax.series_len as f64 / self.sax.segments as f64
    }

    fn eval_leaf(
        &self,
        leaf: &RLeaf,
        query: &[Value],
        best: &mut Answer,
        best_sq: &mut f64,
        stats: &mut QueryStats,
    ) -> Result<()> {
        stats.leaves_visited += 1;
        let eb = self.entry_bytes();
        let mut block = vec![0u8; leaf.count as usize * eb];
        self.file
            .read_exact_at(&mut block, leaf.block as u64 * self.block_bytes() as u64)?;
        let mut series = vec![0.0 as Value; self.sax.series_len];
        for rec in block.chunks_exact(eb) {
            let pos = u64::from_le_bytes(rec[..8].try_into().unwrap());
            if self.materialized {
                for (i, vb) in rec[8..].chunks_exact(4).enumerate() {
                    series[i] = Value::from_le_bytes(vb.try_into().unwrap());
                }
            } else {
                self.dataset.read_into(pos, &mut series)?;
            }
            stats.records_fetched += 1;
            if let Some(d_sq) = euclidean_sq_early_abandon(query, &series, *best_sq) {
                if d_sq < *best_sq {
                    *best_sq = d_sq;
                    *best = Answer {
                        pos,
                        dist: d_sq.sqrt(),
                    };
                }
            }
        }
        Ok(())
    }

    /// Approximate search: greedy descent to the single most promising leaf.
    pub fn approximate_search(&self, query: &[Value]) -> Result<Answer> {
        if query.len() != self.sax.series_len {
            return Err(Error::invalid("query length mismatch"));
        }
        if self.leaves.is_empty() {
            return Ok(Answer::none());
        }
        let q = paa(query, self.sax.segments);
        // Start at the root level, follow the min-mindist child down.
        let top = self.levels.len() - 1;
        let mut idx = (0..self.levels[top].len())
            .min_by(|&a, &b| {
                self.levels[top][a]
                    .mbr
                    .mindist_sq(&q)
                    .total_cmp(&self.levels[top][b].mbr.mindist_sq(&q))
            })
            .expect("non-empty level") as u32;
        for level in (0..=top).rev() {
            let node = &self.levels[level][idx as usize];
            let (start, count) = (node.child_start, node.child_count);
            let pick = |mindist: &dyn Fn(u32) -> f64| -> u32 {
                (start..start + count)
                    .min_by(|&a, &b| mindist(a).total_cmp(&mindist(b)))
                    .expect("non-empty node")
            };
            if level == 0 {
                idx = pick(&|i| self.leaves[i as usize].mbr.mindist_sq(&q));
            } else {
                idx = pick(&|i| self.levels[level - 1][i as usize].mbr.mindist_sq(&q));
            }
        }
        let mut best = Answer::none();
        let mut best_sq = f64::INFINITY;
        let mut stats = QueryStats::default();
        self.eval_leaf(
            &self.leaves[idx as usize],
            query,
            &mut best,
            &mut best_sq,
            &mut stats,
        )?;
        Ok(best)
    }

    /// Exact search: best-first branch and bound over MBR lower bounds.
    pub fn exact_search(&self, query: &[Value]) -> Result<(Answer, QueryStats)> {
        let mut stats = QueryStats::default();
        if query.len() != self.sax.series_len {
            return Err(Error::invalid("query length mismatch"));
        }
        if self.leaves.is_empty() {
            return Ok((Answer::none(), stats));
        }
        let q = paa(query, self.sax.segments);
        let scale = self.paa_scale();
        let mut best = self.approximate_search(query)?;
        let mut best_sq = if best.is_some() {
            best.dist * best.dist
        } else {
            f64::INFINITY
        };

        let mut heap = MinHeap::new();
        let top = self.levels.len() - 1;
        for (i, node) in self.levels[top].iter().enumerate() {
            let lb = (scale * node.mbr.mindist_sq(&q)).sqrt();
            stats.lower_bounds += 1;
            heap.push(
                lb,
                Visit::Node {
                    level: top,
                    idx: i as u32,
                },
            );
        }
        while let Some((bound, visit)) = heap.pop() {
            if bound >= best.dist {
                stats.pruned += 1;
                continue;
            }
            match visit {
                Visit::Leaf { idx } => {
                    self.eval_leaf(
                        &self.leaves[idx as usize],
                        query,
                        &mut best,
                        &mut best_sq,
                        &mut stats,
                    )?;
                }
                Visit::Node { level, idx } => {
                    let node = &self.levels[level][idx as usize];
                    for c in node.child_start..node.child_start + node.child_count {
                        let (lb, v) = if level == 0 {
                            (
                                (scale * self.leaves[c as usize].mbr.mindist_sq(&q)).sqrt(),
                                Visit::Leaf { idx: c },
                            )
                        } else {
                            (
                                (scale * self.levels[level - 1][c as usize].mbr.mindist_sq(&q))
                                    .sqrt(),
                                Visit::Node {
                                    level: level - 1,
                                    idx: c,
                                },
                            )
                        };
                        stats.lower_bounds += 1;
                        if lb < best.dist {
                            heap.push(lb, v);
                        } else {
                            stats.pruned += 1;
                        }
                    }
                }
            }
        }
        Ok((best, stats))
    }
}

/// STR recursion: sort `order` by dimension `dim` and tile.
fn str_partition(order: &mut [u32], points: &[f32], dims: usize, dim: usize, leaf_cap: usize) {
    let n = order.len();
    if n <= leaf_cap || dim >= dims {
        return;
    }
    order.sort_unstable_by(|&a, &b| {
        points[a as usize * dims + dim].total_cmp(&points[b as usize * dims + dim])
    });
    // Number of leaves under this subtree and the slab size for this dim.
    let p = n.div_ceil(leaf_cap);
    let remaining_dims = (dims - dim) as f64;
    let s = (p as f64).powf(1.0 / remaining_dims).ceil() as usize;
    let slab = n.div_ceil(s.max(1));
    if slab >= n {
        return;
    }
    let mut at = 0;
    while at < n {
        let end = (at + slab).min(n);
        str_partition(&mut order[at..end], points, dims, dim + 1, leaf_cap);
        at = end;
    }
}

impl SeriesIndex for RTreeIndex {
    fn name(&self) -> String {
        if self.materialized {
            "R-tree".into()
        } else {
            "R-tree+".into()
        }
    }

    fn approximate(&self, query: &[Value]) -> Result<Answer> {
        self.approximate_search(query)
    }

    fn exact(&self, query: &[Value]) -> Result<(Answer, QueryStats)> {
        self.exact_search(query)
    }

    fn disk_bytes(&self) -> u64 {
        self.file.len()
    }

    fn leaf_count(&self) -> u64 {
        self.leaves.len() as u64
    }

    fn avg_leaf_fill(&self) -> f64 {
        if self.leaves.is_empty() {
            return 0.0;
        }
        self.len() as f64 / (self.leaves.len() * self.leaf_capacity) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconut_series::dataset::write_dataset;
    use coconut_series::distance::{euclidean, znormalize};
    use coconut_series::gen::{Generator, RandomWalkGen};
    use coconut_storage::{IoStats, TempDir};

    const LEN: usize = 64;

    fn sax() -> SaxConfig {
        SaxConfig {
            series_len: LEN,
            segments: 8,
            card_bits: 8,
        }
    }

    fn make_dataset(dir: &TempDir, n: u64) -> Dataset {
        let stats = Arc::new(IoStats::new());
        let path = dir.path().join("data.bin");
        write_dataset(&path, &mut RandomWalkGen::new(61), n, LEN, &stats).unwrap();
        Dataset::open(&path, stats).unwrap()
    }

    fn brute_force(ds: &Dataset, q: &[Value]) -> Answer {
        let mut best = Answer::none();
        let mut scan = ds.scan();
        while let Some((pos, s)) = scan.next_series().unwrap() {
            best.merge(Answer {
                pos,
                dist: euclidean(q, s),
            });
        }
        best
    }

    fn query(seed: u64) -> Vec<Value> {
        let mut q = RandomWalkGen::new(seed).generate(LEN);
        znormalize(&mut q);
        q
    }

    #[test]
    fn str_produces_full_leaves() {
        let dir = TempDir::new("rtree").unwrap();
        let ds = make_dataset(&dir, 640);
        let t = RTreeIndex::build(&ds, sax(), 32, false, dir.path()).unwrap();
        assert_eq!(t.len(), 640);
        assert_eq!(t.leaf_count(), 20);
        assert!((t.avg_leaf_fill() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn exact_matches_brute_force_nonmaterialized() {
        let dir = TempDir::new("rtree").unwrap();
        let ds = make_dataset(&dir, 500);
        let t = RTreeIndex::build(&ds, sax(), 32, false, dir.path()).unwrap();
        for seed in 0..8 {
            let q = query(seed);
            let (ans, _) = t.exact_search(&q).unwrap();
            let expect = brute_force(&ds, &q);
            assert_eq!(ans.pos, expect.pos, "seed {seed}");
        }
    }

    #[test]
    fn exact_matches_brute_force_materialized() {
        let dir = TempDir::new("rtree").unwrap();
        let ds = make_dataset(&dir, 300);
        let t = RTreeIndex::build(&ds, sax(), 32, true, dir.path()).unwrap();
        for seed in 10..16 {
            let q = query(seed);
            let (ans, _) = t.exact_search(&q).unwrap();
            let expect = brute_force(&ds, &q);
            assert_eq!(ans.pos, expect.pos, "seed {seed}");
        }
    }

    #[test]
    fn approximate_never_beats_exact() {
        let dir = TempDir::new("rtree").unwrap();
        let ds = make_dataset(&dir, 400);
        let t = RTreeIndex::build(&ds, sax(), 32, false, dir.path()).unwrap();
        for seed in 20..28 {
            let q = query(seed);
            let approx = t.approximate_search(&q).unwrap();
            let (exact, _) = t.exact_search(&q).unwrap();
            assert!(exact.dist <= approx.dist + 1e-9);
        }
    }

    #[test]
    fn mbr_mindist_zero_inside() {
        let mut m = Mbr::empty(2);
        m.add_point(&[0.0, 0.0]);
        m.add_point(&[2.0, 2.0]);
        assert_eq!(m.mindist_sq(&[1.0, 1.0]), 0.0);
        assert_eq!(m.mindist_sq(&[3.0, 1.0]), 1.0);
        assert_eq!(m.mindist_sq(&[3.0, 3.0]), 2.0);
        assert_eq!(m.mindist_sq(&[-1.0, -1.0]), 2.0);
    }

    #[test]
    fn materialized_is_larger_on_disk() {
        let dir = TempDir::new("rtree").unwrap();
        let ds = make_dataset(&dir, 200);
        let plus = RTreeIndex::build(&ds, sax(), 32, false, dir.path()).unwrap();
        let full = RTreeIndex::build(&ds, sax(), 32, true, dir.path()).unwrap();
        assert!(full.disk_bytes() > 10 * plus.disk_bytes());
    }

    #[test]
    fn empty_dataset() {
        let dir = TempDir::new("rtree").unwrap();
        let ds = make_dataset(&dir, 0);
        let t = RTreeIndex::build(&ds, sax(), 32, false, dir.path()).unwrap();
        assert!(t.is_empty());
        let q = query(1);
        assert!(!t.approximate_search(&q).unwrap().is_some());
        let (ans, _) = t.exact_search(&q).unwrap();
        assert!(!ans.is_some());
    }
}
