//! iSAX 2.0: the classic top-down data series index (paper Section 2/3,
//! Figure 3).
//!
//! Series are inserted one by one through the root; inserts are buffered
//! (the FBL) and flushed when the memory budget runs out. Every flush is a
//! read-modify-write of a leaf block, and splits scatter children across
//! the file — the O(N) random-I/O construction behaviour the paper analyzes
//! in Section 3.1. Exact search is the traditional best-first traversal with
//! node MINDIST pruning.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use coconut_series::dataset::Dataset;
use coconut_series::distance::{euclidean_sq, euclidean_sq_early_abandon};
use coconut_series::index::{Answer, QueryStats, SeriesIndex};
use coconut_series::Value;
use coconut_storage::{CountedFile, Error, Result};
use coconut_summary::mindist::mindist_paa_isax;
use coconut_summary::paa::paa;
use coconut_summary::sax::Summarizer;
use coconut_summary::SaxConfig;

use crate::heap::MinHeap;
use crate::prefixtree::{PrefixTree, PrefixTreeStats, Word};

static ISAX2_ID: AtomicU64 = AtomicU64::new(0);

/// The iSAX 2.0 index (non-materialized: leaves hold `(word, position)`).
pub struct Isax2Index {
    tree: PrefixTree,
    dataset: Dataset,
    sax: SaxConfig,
}

impl Isax2Index {
    /// Build by top-down insertion over all of `dataset`, buffering inserts
    /// within `memory_bytes`.
    pub fn build(
        dataset: &Dataset,
        sax: SaxConfig,
        leaf_capacity: usize,
        memory_bytes: u64,
        dir: &Path,
    ) -> Result<Self> {
        sax.validate()?;
        if dataset.series_len() != sax.series_len {
            return Err(Error::invalid("dataset/config series length mismatch"));
        }
        let id = ISAX2_ID.fetch_add(1, Ordering::Relaxed);
        let stats = Arc::clone(dataset.file().stats());
        let file = Arc::new(CountedFile::create(
            dir.join(format!("isax2-{id}.idx")),
            stats,
        )?);
        let mut tree = PrefixTree::new(sax, leaf_capacity, memory_bytes, file)?;
        let mut summarizer = Summarizer::new(sax);
        let mut scan = dataset.scan();
        let mut word: Word = [0u8; 32];
        while let Some((pos, series)) = scan.next_series()? {
            summarizer.sax_into(series, &mut word[..sax.segments]);
            tree.insert(&word, pos)?;
        }
        tree.flush()?;
        Ok(Isax2Index {
            tree,
            dataset: dataset.clone(),
            sax,
        })
    }

    /// Build statistics (splits, flush cycles).
    pub fn tree_stats(&self) -> PrefixTreeStats {
        self.tree.stats()
    }

    /// Entries indexed.
    pub fn len(&self) -> u64 {
        self.tree.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    fn query_word(&self, query: &[Value]) -> Result<Word> {
        if query.len() != self.sax.series_len {
            return Err(Error::invalid("query length mismatch"));
        }
        let mut summarizer = Summarizer::new(self.sax);
        let mut word = [0u8; 32];
        summarizer.sax_into(query, &mut word[..self.sax.segments]);
        Ok(word)
    }

    /// Evaluate every entry of leaf `node` against `query`.
    fn eval_leaf(
        &self,
        node: u32,
        query: &[Value],
        best: &mut Answer,
        best_sq: &mut f64,
        stats: &mut QueryStats,
    ) -> Result<()> {
        let entries = self.tree.leaf_entries(node)?;
        stats.leaves_visited += 1;
        let mut buf = vec![0.0 as Value; self.sax.series_len];
        for e in entries {
            self.dataset.read_into(e.pos, &mut buf)?;
            stats.records_fetched += 1;
            if let Some(d_sq) = euclidean_sq_early_abandon(query, &buf, *best_sq) {
                if d_sq < *best_sq {
                    *best_sq = d_sq;
                    *best = Answer {
                        pos: e.pos,
                        dist: d_sq.sqrt(),
                    };
                }
            }
        }
        Ok(())
    }

    /// Approximate search: the single most promising leaf.
    pub fn approximate_search(&self, query: &[Value]) -> Result<Answer> {
        let word = self.query_word(query)?;
        let Some(node) = self.tree.descend(&word) else {
            return Ok(Answer::none());
        };
        let mut best = Answer::none();
        let mut best_sq = f64::INFINITY;
        let mut stats = QueryStats::default();
        self.eval_leaf(node, query, &mut best, &mut best_sq, &mut stats)?;
        Ok(best)
    }

    /// Traditional exact search: best-first node traversal with MINDIST
    /// pruning.
    pub fn exact_search(&self, query: &[Value]) -> Result<(Answer, QueryStats)> {
        let mut stats = QueryStats::default();
        let Some(root) = self.tree.root() else {
            return Ok((Answer::none(), stats));
        };
        let query_paa = paa(query, self.sax.segments);
        let mut best = self.approximate_search(query)?;
        let mut best_sq = if best.is_some() {
            best.dist * best.dist
        } else {
            f64::INFINITY
        };

        let mut heap = MinHeap::new();
        heap.push(0.0, root);
        while let Some((bound, node)) = heap.pop() {
            if bound >= best.dist {
                stats.pruned += 1;
                continue;
            }
            if self.tree.is_leaf(node) {
                self.eval_leaf(node, query, &mut best, &mut best_sq, &mut stats)?;
            } else if let Some((a, b)) = self.tree.children(node) {
                for child in [a, b] {
                    let md = mindist_paa_isax(&query_paa, self.tree.node_mask(child), &self.sax);
                    stats.lower_bounds += 1;
                    if md < best.dist {
                        heap.push(md, child);
                    } else {
                        stats.pruned += 1;
                    }
                }
            }
        }
        Ok((best, stats))
    }

    /// Euclidean distance helper exposed for tests.
    pub fn true_distance(&self, query: &[Value], pos: u64) -> Result<f64> {
        let s = self.dataset.get(pos)?;
        Ok(euclidean_sq(query, &s).sqrt())
    }
}

impl SeriesIndex for Isax2Index {
    fn name(&self) -> String {
        "iSAX2.0".into()
    }

    fn approximate(&self, query: &[Value]) -> Result<Answer> {
        self.approximate_search(query)
    }

    fn exact(&self, query: &[Value]) -> Result<(Answer, QueryStats)> {
        self.exact_search(query)
    }

    fn disk_bytes(&self) -> u64 {
        self.tree.allocated_blocks() as u64 * self.tree.block_bytes() as u64
    }

    fn leaf_count(&self) -> u64 {
        self.tree.leaf_count()
    }

    fn avg_leaf_fill(&self) -> f64 {
        self.tree.avg_fill()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconut_series::dataset::write_dataset;
    use coconut_series::distance::{euclidean, znormalize};
    use coconut_series::gen::{Generator, RandomWalkGen};
    use coconut_storage::{IoStats, TempDir};

    const LEN: usize = 64;

    fn sax() -> SaxConfig {
        SaxConfig {
            series_len: LEN,
            segments: 8,
            card_bits: 8,
        }
    }

    fn make_dataset(dir: &TempDir, n: u64) -> Dataset {
        let stats = Arc::new(IoStats::new());
        let path = dir.path().join("data.bin");
        write_dataset(&path, &mut RandomWalkGen::new(41), n, LEN, &stats).unwrap();
        Dataset::open(&path, stats).unwrap()
    }

    fn brute_force(ds: &Dataset, q: &[Value]) -> Answer {
        let mut best = Answer::none();
        let mut scan = ds.scan();
        while let Some((pos, s)) = scan.next_series().unwrap() {
            best.merge(Answer {
                pos,
                dist: euclidean(q, s),
            });
        }
        best
    }

    fn query(seed: u64) -> Vec<Value> {
        let mut q = RandomWalkGen::new(seed).generate(LEN);
        znormalize(&mut q);
        q
    }

    #[test]
    fn exact_matches_brute_force() {
        let dir = TempDir::new("isax2").unwrap();
        let ds = make_dataset(&dir, 600);
        let idx = Isax2Index::build(&ds, sax(), 32, 1 << 20, dir.path()).unwrap();
        assert_eq!(idx.len(), 600);
        for seed in 0..10 {
            let q = query(seed);
            let (ans, _) = idx.exact_search(&q).unwrap();
            let expect = brute_force(&ds, &q);
            assert_eq!(ans.pos, expect.pos, "seed {seed}");
            assert!((ans.dist - expect.dist).abs() < 1e-6);
        }
    }

    #[test]
    fn exact_correct_even_with_tiny_buffer() {
        let dir = TempDir::new("isax2").unwrap();
        let ds = make_dataset(&dir, 400);
        let idx = Isax2Index::build(&ds, sax(), 16, 256, dir.path()).unwrap();
        assert!(idx.tree_stats().flush_cycles > 10);
        for seed in 20..26 {
            let q = query(seed);
            let (ans, _) = idx.exact_search(&q).unwrap();
            let expect = brute_force(&ds, &q);
            assert_eq!(ans.pos, expect.pos, "seed {seed}");
        }
    }

    #[test]
    fn approximate_never_beats_exact() {
        let dir = TempDir::new("isax2").unwrap();
        let ds = make_dataset(&dir, 300);
        let idx = Isax2Index::build(&ds, sax(), 32, 1 << 20, dir.path()).unwrap();
        for seed in 30..38 {
            let q = query(seed);
            let approx = idx.approximate_search(&q).unwrap();
            let (exact, _) = idx.exact_search(&q).unwrap();
            assert!(exact.dist <= approx.dist + 1e-9);
        }
    }

    #[test]
    fn pruning_happens() {
        let dir = TempDir::new("isax2").unwrap();
        let ds = make_dataset(&dir, 800);
        let idx = Isax2Index::build(&ds, sax(), 16, 1 << 20, dir.path()).unwrap();
        let q = query(50);
        let (_, stats) = idx.exact_search(&q).unwrap();
        assert!(stats.pruned > 0, "no nodes pruned");
        assert!(stats.records_fetched < 800, "no pruning benefit");
    }

    #[test]
    fn empty_dataset() {
        let dir = TempDir::new("isax2").unwrap();
        let ds = make_dataset(&dir, 0);
        let idx = Isax2Index::build(&ds, sax(), 32, 1 << 20, dir.path()).unwrap();
        assert!(idx.is_empty());
        let q = query(1);
        assert!(!idx.approximate_search(&q).unwrap().is_some());
        let (ans, _) = idx.exact_search(&q).unwrap();
        assert!(!ans.is_some());
    }
}
