//! The ADS family: the state of the art the paper compares against.
//!
//! * **ADSFull** builds a clustered iSAX-style index in two passes: pass 1
//!   inserts the summarizations top-down (buffered); pass 2 re-scans the
//!   raw file and appends every series to its leaf's payload area, buffered
//!   under the memory budget — when memory is small the flushes degrade to
//!   random I/O across leaves, which is why ADSFull falls behind
//!   Coconut-Tree-Full as memory shrinks (paper Figures 8a/8d).
//! * **ADS+** stops after pass 1 with deliberately coarse leaves and
//!   *adaptively* splits a leaf down to the target size the first time a
//!   query visits it — construction is very fast, early queries pay the
//!   splitting cost (Figures 8b/10).
//!
//! Exact search is SIMS (Scan of In-Memory Summarizations): the SAX words
//! of all series are kept in memory in raw-file order; a query computes a
//! lower bound for each with parallel threads and fetches the unpruned
//! records with a skip-sequential pass over the raw file.

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use coconut_series::dataset::Dataset;
use coconut_series::distance::{euclidean_sq, euclidean_sq_early_abandon};
use coconut_series::index::{Answer, QueryStats, SeriesIndex};
use coconut_series::Value;
use coconut_storage::{CountedFile, Error, Result};
use coconut_summary::mindist::{finish, mindist_sq_raw};
use coconut_summary::paa::paa;
use coconut_summary::sax::Summarizer;
use coconut_summary::SaxConfig;

use crate::prefixtree::{PrefixTree, PrefixTreeStats, Word};

static ADS_ID: AtomicU64 = AtomicU64::new(0);

/// Which member of the ADS family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdsVariant {
    /// Non-materialized, adaptive (ADS+).
    Plus,
    /// Materialized, clustered (ADSFull).
    Full,
}

/// ADS+ builds its initial leaves this many times larger than the target
/// capacity and refines them on first access.
const COARSE_FACTOR: usize = 8;

/// Payload chunks are aligned to this boundary (models the leaf slack that
/// makes ADSFull's on-disk size exceed the raw data's).
const CHUNK_ALIGN: u64 = 4096;

struct PayloadStore {
    file: Arc<CountedFile>,
    /// Per build-time leaf id: the (offset, record count) chunks written.
    chunks: Vec<Vec<(u64, u32)>>,
}

/// An ADS+ or ADSFull index.
pub struct AdsIndex {
    tree: RwLock<PrefixTree>,
    variant: AdsVariant,
    dataset: Dataset,
    sax: SaxConfig,
    threads: usize,
    /// Target (fine) leaf capacity.
    leaf_capacity: usize,
    /// In-memory summarizations, raw-file order (`n * segments` bytes).
    words_by_pos: Vec<u8>,
    payload: Option<PayloadStore>,
    /// Positions `0..covered_end` are indexed.
    covered_end: u64,
}

impl AdsIndex {
    /// Build over all of `dataset`. `memory_bytes` bounds both pass-1 insert
    /// buffers and (for ADSFull) pass-2 payload buffers.
    pub fn build(
        dataset: &Dataset,
        sax: SaxConfig,
        leaf_capacity: usize,
        memory_bytes: u64,
        dir: &Path,
        variant: AdsVariant,
        threads: usize,
    ) -> Result<Self> {
        Self::build_upto(
            dataset,
            sax,
            leaf_capacity,
            memory_bytes,
            dir,
            variant,
            threads,
            dataset.len(),
        )
    }

    /// Build over positions `0..upto` only (workloads that reveal the
    /// dataset in batches use this together with [`AdsIndex::extend_to`]).
    #[allow(clippy::too_many_arguments)] // mirrors build plus the bound
    pub fn build_upto(
        dataset: &Dataset,
        sax: SaxConfig,
        leaf_capacity: usize,
        memory_bytes: u64,
        dir: &Path,
        variant: AdsVariant,
        threads: usize,
        upto: u64,
    ) -> Result<Self> {
        if upto > dataset.len() {
            return Err(Error::invalid("upto exceeds the dataset length"));
        }
        sax.validate()?;
        if dataset.series_len() != sax.series_len {
            return Err(Error::invalid("dataset/config series length mismatch"));
        }
        let id = ADS_ID.fetch_add(1, Ordering::Relaxed);
        let stats = Arc::clone(dataset.file().stats());
        let tree_capacity = match variant {
            AdsVariant::Plus => leaf_capacity * COARSE_FACTOR,
            AdsVariant::Full => leaf_capacity,
        };
        let file = Arc::new(CountedFile::create(
            dir.join(format!("ads-{id}.idx")),
            Arc::clone(&stats),
        )?);
        let mut tree = PrefixTree::new(sax, tree_capacity, memory_bytes, file)?;

        // Pass 1: summarize and insert (word, pos); keep the words in memory
        // ("the SAX summaries ... occupy merely 16 GB" for 1e9 series).
        let mut words_by_pos = Vec::with_capacity(upto as usize * sax.segments);
        let mut summarizer = Summarizer::new(sax);
        let mut word: Word = [0u8; 32];
        {
            let mut scan = dataset.scan();
            while let Some((pos, series)) = scan.next_series()? {
                if pos >= upto {
                    break;
                }
                summarizer.sax_into(series, &mut word[..sax.segments]);
                words_by_pos.extend_from_slice(&word[..sax.segments]);
                tree.insert(&word, pos)?;
            }
        }
        tree.flush()?;

        // Pass 2 (Full only): cluster the raw series by leaf.
        let payload = match variant {
            AdsVariant::Plus => None,
            AdsVariant::Full => {
                let pfile = Arc::new(CountedFile::create(
                    dir.join(format!("ads-{id}.dat")),
                    Arc::clone(&stats),
                )?);
                let mut store = PayloadStore {
                    file: pfile,
                    chunks: vec![Vec::new(); tree.leaf_count() as usize],
                };
                let record_bytes = 8 + dataset.series_bytes();
                let mut buffers: HashMap<u32, Vec<u8>> = HashMap::new();
                let mut buffered = 0u64;
                let mut scan = dataset.scan();
                while let Some((pos, series)) = scan.next_series()? {
                    if pos >= upto {
                        break;
                    }
                    let w = Self::word_at(&words_by_pos, sax.segments, pos);
                    let mut full = [0u8; 32];
                    full[..sax.segments].copy_from_slice(w);
                    let node = tree.descend(&full).expect("tree is non-empty");
                    let leaf = tree.leaf_id(node).expect("descend returns leaf");
                    let buf = buffers.entry(leaf).or_default();
                    buf.extend_from_slice(&pos.to_le_bytes());
                    for &v in series {
                        buf.extend_from_slice(&v.to_le_bytes());
                    }
                    buffered += record_bytes as u64;
                    if buffered >= memory_bytes {
                        Self::flush_payload(&mut store, &mut buffers, record_bytes)?;
                        buffered = 0;
                    }
                }
                Self::flush_payload(&mut store, &mut buffers, record_bytes)?;
                Some(store)
            }
        };

        Ok(AdsIndex {
            tree: RwLock::new(tree),
            variant,
            dataset: dataset.clone(),
            sax,
            threads: threads.max(1),
            leaf_capacity,
            words_by_pos,
            payload,
            covered_end: upto,
        })
    }

    /// Index positions `covered_end..upto` by top-down insertion — ADS's
    /// native update path (ADS+ only; the clustered ADSFull would need its
    /// payload pass re-run).
    pub fn extend_to(&mut self, upto: u64) -> Result<()> {
        if self.variant != AdsVariant::Plus {
            return Err(Error::invalid("extend_to is only supported for ADS+"));
        }
        if upto > self.dataset.len() {
            return Err(Error::invalid("upto exceeds the dataset length"));
        }
        let mut summarizer = Summarizer::new(self.sax);
        let mut word: Word = [0u8; 32];
        let mut buf = vec![0.0 as Value; self.sax.series_len];
        let tree = self.tree.get_mut().expect("lock poisoned");
        for pos in self.covered_end..upto {
            self.dataset.read_into(pos, &mut buf)?;
            summarizer.sax_into(&buf, &mut word[..self.sax.segments]);
            self.words_by_pos
                .extend_from_slice(&word[..self.sax.segments]);
            tree.insert(&word, pos)?;
        }
        tree.flush()?;
        self.covered_end = upto;
        Ok(())
    }

    #[inline]
    fn word_at(words: &[u8], segments: usize, pos: u64) -> &[u8] {
        &words[pos as usize * segments..(pos as usize + 1) * segments]
    }

    fn flush_payload(
        store: &mut PayloadStore,
        buffers: &mut HashMap<u32, Vec<u8>>,
        record_bytes: usize,
    ) -> Result<()> {
        // Flush leaf by leaf; each chunk lands wherever the file ends —
        // scattered, page-aligned writes.
        let mut leaves: Vec<u32> = buffers.keys().copied().collect();
        leaves.sort_unstable();
        for leaf in leaves {
            let buf = buffers.remove(&leaf).unwrap();
            if buf.is_empty() {
                continue;
            }
            let count = (buf.len() / record_bytes) as u32;
            let end = store.file.len();
            let aligned = end.div_ceil(CHUNK_ALIGN) * CHUNK_ALIGN;
            if aligned > end {
                store
                    .file
                    .write_all_at(&vec![0u8; (aligned - end) as usize], end)?;
            }
            store.file.write_all_at(&buf, aligned)?;
            store.chunks[leaf as usize].push((aligned, count));
        }
        Ok(())
    }

    /// The pass-1 tree statistics.
    pub fn tree_stats(&self) -> PrefixTreeStats {
        self.tree.read().expect("lock poisoned").stats()
    }

    /// Entries indexed.
    pub fn len(&self) -> u64 {
        self.tree.read().expect("lock poisoned").len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Which family member this is.
    pub fn variant(&self) -> AdsVariant {
        self.variant
    }

    fn query_word(&self, query: &[Value]) -> Result<Word> {
        if query.len() != self.sax.series_len {
            return Err(Error::invalid("query length mismatch"));
        }
        let mut summarizer = Summarizer::new(self.sax);
        let mut word = [0u8; 32];
        summarizer.sax_into(query, &mut word[..self.sax.segments]);
        Ok(word)
    }

    /// Approximate search: descend to the most promising leaf. ADS+ first
    /// refines the leaf adaptively (paying the split cost on first visit);
    /// ADSFull reads the clustered payload chunks.
    pub fn approximate_search(&self, query: &[Value]) -> Result<Answer> {
        Ok(self.approximate_with_stats(query)?.0)
    }

    fn approximate_with_stats(&self, query: &[Value]) -> Result<(Answer, QueryStats)> {
        let word = self.query_word(query)?;
        let mut stats = QueryStats::default();
        let mut best = Answer::none();
        let mut best_sq = f64::INFINITY;
        match self.variant {
            AdsVariant::Plus => {
                {
                    let mut tree = self.tree.write().expect("lock poisoned");
                    tree.refine_for(&word, self.leaf_capacity)?;
                }
                let tree = self.tree.read().expect("lock poisoned");
                let Some(node) = tree.descend(&word) else {
                    return Ok((best, stats));
                };
                stats.leaves_visited += 1;
                let mut buf = vec![0.0 as Value; self.sax.series_len];
                for e in tree.leaf_entries(node)? {
                    self.dataset.read_into(e.pos, &mut buf)?;
                    stats.records_fetched += 1;
                    let d_sq = euclidean_sq(query, &buf);
                    if d_sq < best_sq {
                        best_sq = d_sq;
                        best = Answer {
                            pos: e.pos,
                            dist: d_sq.sqrt(),
                        };
                    }
                }
            }
            AdsVariant::Full => {
                let tree = self.tree.read().expect("lock poisoned");
                let Some(node) = tree.descend(&word) else {
                    return Ok((best, stats));
                };
                let leaf = tree.leaf_id(node).expect("leaf");
                stats.leaves_visited += 1;
                let store = self.payload.as_ref().expect("Full has a payload store");
                let record_bytes = 8 + self.dataset.series_bytes();
                let mut series = vec![0.0 as Value; self.sax.series_len];
                for &(offset, count) in &store.chunks[leaf as usize] {
                    let mut chunk = vec![0u8; count as usize * record_bytes];
                    store.file.read_exact_at(&mut chunk, offset)?;
                    for rec in chunk.chunks_exact(record_bytes) {
                        let pos = u64::from_le_bytes(rec[..8].try_into().unwrap());
                        for (i, vb) in rec[8..].chunks_exact(4).enumerate() {
                            series[i] = Value::from_le_bytes(vb.try_into().unwrap());
                        }
                        stats.records_fetched += 1;
                        let d_sq = euclidean_sq(query, &series);
                        if d_sq < best_sq {
                            best_sq = d_sq;
                            best = Answer {
                                pos,
                                dist: d_sq.sqrt(),
                            };
                        }
                    }
                }
            }
        }
        Ok((best, stats))
    }

    /// Parallel MINDIST over the flat in-memory word array. Small scans run
    /// single-threaded: per-query thread spawns only pay off once the scan
    /// reaches hundreds of thousands of records (see `bench_query`).
    fn parallel_mindists(&self, query_paa: &[f64]) -> Vec<f64> {
        const PARALLEL_MIN_RECORDS: usize = 1 << 17;
        let segments = self.sax.segments;
        let n = self.words_by_pos.len() / segments.max(1);
        let mut out = vec![0.0f64; n];
        let threads = self.threads.clamp(1, n.max(1));
        if threads <= 1 || n < PARALLEL_MIN_RECORDS {
            for (i, o) in out.iter_mut().enumerate() {
                let w = &self.words_by_pos[i * segments..(i + 1) * segments];
                *o = finish(mindist_sq_raw(query_paa, w, self.sax.card_bits), &self.sax);
            }
            return out;
        }
        let chunk = n.div_ceil(threads);
        std::thread::scope(|s| {
            for (ci, out_chunk) in out.chunks_mut(chunk).enumerate() {
                let words = &self.words_by_pos;
                let sax = self.sax;
                s.spawn(move || {
                    let base = ci * chunk;
                    for (j, o) in out_chunk.iter_mut().enumerate() {
                        let i = base + j;
                        let w = &words[i * segments..(i + 1) * segments];
                        *o = finish(mindist_sq_raw(query_paa, w, sax.card_bits), &sax);
                    }
                });
            }
        });
        out
    }

    /// Exact search via SIMS over the raw-file-ordered summarizations.
    pub fn exact_search(&self, query: &[Value]) -> Result<(Answer, QueryStats)> {
        let (mut best, mut stats) = self.approximate_with_stats(query)?;
        let query_paa = paa(query, self.sax.segments);
        let mindists = self.parallel_mindists(&query_paa);
        stats.lower_bounds += mindists.len() as u64;
        let mut best_sq = if best.is_some() {
            best.dist * best.dist
        } else {
            f64::INFINITY
        };
        let mut buf = vec![0.0 as Value; self.sax.series_len];
        for (i, &md) in mindists.iter().enumerate() {
            if md >= best.dist {
                stats.pruned += 1;
                continue;
            }
            let pos = i as u64;
            self.dataset.read_into(pos, &mut buf)?;
            stats.records_fetched += 1;
            if let Some(d_sq) = euclidean_sq_early_abandon(query, &buf, best_sq) {
                if d_sq < best_sq {
                    best_sq = d_sq;
                    best = Answer {
                        pos,
                        dist: d_sq.sqrt(),
                    };
                }
            }
        }
        Ok((best, stats))
    }
}

impl SeriesIndex for AdsIndex {
    fn name(&self) -> String {
        match self.variant {
            AdsVariant::Plus => "ADS+".into(),
            AdsVariant::Full => "ADSFull".into(),
        }
    }

    fn approximate(&self, query: &[Value]) -> Result<Answer> {
        self.approximate_search(query)
    }

    fn exact(&self, query: &[Value]) -> Result<(Answer, QueryStats)> {
        self.exact_search(query)
    }

    fn disk_bytes(&self) -> u64 {
        let tree = self.tree.read().expect("lock poisoned");
        let mut bytes = tree.allocated_blocks() as u64 * tree.block_bytes() as u64;
        if let Some(p) = &self.payload {
            bytes += p.file.len();
        }
        bytes
    }

    fn leaf_count(&self) -> u64 {
        self.tree.read().expect("lock poisoned").leaf_count()
    }

    fn avg_leaf_fill(&self) -> f64 {
        self.tree.read().expect("lock poisoned").avg_fill()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconut_series::dataset::write_dataset;
    use coconut_series::distance::{euclidean, znormalize};
    use coconut_series::gen::{Generator, RandomWalkGen};
    use coconut_storage::{IoStats, TempDir};

    const LEN: usize = 64;

    fn sax() -> SaxConfig {
        SaxConfig {
            series_len: LEN,
            segments: 8,
            card_bits: 8,
        }
    }

    fn make_dataset(dir: &TempDir, n: u64) -> Dataset {
        let stats = Arc::new(IoStats::new());
        let path = dir.path().join("data.bin");
        write_dataset(&path, &mut RandomWalkGen::new(53), n, LEN, &stats).unwrap();
        Dataset::open(&path, stats).unwrap()
    }

    fn brute_force(ds: &Dataset, q: &[Value]) -> Answer {
        let mut best = Answer::none();
        let mut scan = ds.scan();
        while let Some((pos, s)) = scan.next_series().unwrap() {
            best.merge(Answer {
                pos,
                dist: euclidean(q, s),
            });
        }
        best
    }

    fn query(seed: u64) -> Vec<Value> {
        let mut q = RandomWalkGen::new(seed).generate(LEN);
        znormalize(&mut q);
        q
    }

    #[test]
    fn ads_plus_exact_matches_brute_force() {
        let dir = TempDir::new("ads").unwrap();
        let ds = make_dataset(&dir, 500);
        let idx =
            AdsIndex::build(&ds, sax(), 16, 1 << 20, dir.path(), AdsVariant::Plus, 2).unwrap();
        for seed in 0..8 {
            let q = query(seed);
            let (ans, _) = idx.exact_search(&q).unwrap();
            let expect = brute_force(&ds, &q);
            assert_eq!(ans.pos, expect.pos, "seed {seed}");
        }
    }

    #[test]
    fn ads_full_exact_matches_brute_force() {
        let dir = TempDir::new("ads").unwrap();
        let ds = make_dataset(&dir, 500);
        let idx =
            AdsIndex::build(&ds, sax(), 16, 1 << 20, dir.path(), AdsVariant::Full, 2).unwrap();
        for seed in 10..18 {
            let q = query(seed);
            let (ans, _) = idx.exact_search(&q).unwrap();
            let expect = brute_force(&ds, &q);
            assert_eq!(ans.pos, expect.pos, "seed {seed}");
        }
    }

    #[test]
    fn plus_adapts_on_first_visit() {
        let dir = TempDir::new("ads").unwrap();
        let ds = make_dataset(&dir, 800);
        let idx = AdsIndex::build(&ds, sax(), 8, 1 << 20, dir.path(), AdsVariant::Plus, 1).unwrap();
        let leaves_before = idx.leaf_count();
        let splits_before = idx.tree_stats().splits;
        let q = query(30);
        idx.approximate_search(&q).unwrap();
        // Repeating the same query must not split again.
        let splits_after_first = idx.tree_stats().splits;
        idx.approximate_search(&q).unwrap();
        assert_eq!(idx.tree_stats().splits, splits_after_first);
        assert!(
            idx.leaf_count() > leaves_before || splits_after_first == splits_before,
            "a coarse leaf should have been refined (or was already fine)"
        );
    }

    #[test]
    fn full_payload_covers_all_series() {
        let dir = TempDir::new("ads").unwrap();
        let ds = make_dataset(&dir, 300);
        let idx = AdsIndex::build(&ds, sax(), 16, 4096, dir.path(), AdsVariant::Full, 1).unwrap();
        let store = idx.payload.as_ref().unwrap();
        let total: u32 = store.chunks.iter().flatten().map(|&(_, c)| c).sum();
        assert_eq!(total, 300);
        // Small budget -> many chunks (scattered flushes).
        let chunk_count: usize = store.chunks.iter().map(|c| c.len()).sum();
        assert!(chunk_count > store.chunks.len() / 2, "chunks {chunk_count}");
    }

    #[test]
    fn full_is_larger_on_disk_than_plus() {
        let dir = TempDir::new("ads").unwrap();
        let ds = make_dataset(&dir, 400);
        let plus =
            AdsIndex::build(&ds, sax(), 16, 1 << 20, dir.path(), AdsVariant::Plus, 1).unwrap();
        let full =
            AdsIndex::build(&ds, sax(), 16, 1 << 20, dir.path(), AdsVariant::Full, 1).unwrap();
        assert!(full.disk_bytes() > plus.disk_bytes() * 2);
        // The materialized index is at least as big as the raw payload —
        // the paper reports ADSFull at 311 GB over a 277 GB dataset.
        assert!(full.disk_bytes() >= ds.payload_bytes());
    }

    #[test]
    fn approximate_never_beats_exact() {
        let dir = TempDir::new("ads").unwrap();
        let ds = make_dataset(&dir, 400);
        for variant in [AdsVariant::Plus, AdsVariant::Full] {
            let idx = AdsIndex::build(&ds, sax(), 16, 1 << 20, dir.path(), variant, 1).unwrap();
            for seed in 40..45 {
                let q = query(seed);
                let approx = idx.approximate_search(&q).unwrap();
                let (exact, _) = idx.exact_search(&q).unwrap();
                assert!(exact.dist <= approx.dist + 1e-9, "{variant:?} seed {seed}");
            }
        }
    }

    #[test]
    fn empty_dataset() {
        let dir = TempDir::new("ads").unwrap();
        let ds = make_dataset(&dir, 0);
        let idx =
            AdsIndex::build(&ds, sax(), 16, 1 << 20, dir.path(), AdsVariant::Plus, 1).unwrap();
        assert!(idx.is_empty());
        let q = query(1);
        let (ans, _) = idx.exact_search(&q).unwrap();
        assert!(!ans.is_some());
    }
}
