//! The top-down iSAX prefix tree shared by iSAX 2.0 and the ADS family.
//!
//! This is the structure the paper's Section 3 analyzes (Figure 3): every
//! node is an iSAX mask; a full leaf splits by extending one segment's
//! prefix by one bit ("the segment whose next unprefixed bit divides the
//! resident data series most"). Inserts are buffered in memory (the FBL of
//! iSAX 2.0); when the buffer budget is exhausted, all buffers are flushed
//! — each flush is a read-modify-write of that leaf's disk block, and
//! split-off children are allocated "wherever there is space on disk", so
//! leaves end up non-contiguous and sparsely filled. Those two properties
//! are precisely what Coconut's bottom-up construction removes.
//!
//! Leaf blocks store `(SAX word, position)` entries; raw series payloads
//! (for the materialized ADSFull) live in a separate payload store keyed by
//! leaf, filled in a second pass after the structure is frozen.

use std::sync::Arc;

use coconut_storage::{CountedFile, Error, Result};
use coconut_summary::isax::IsaxMask;
use coconut_summary::SaxConfig;

/// Fixed-size SAX word storage (up to 32 segments).
pub type Word = [u8; 32];

/// One buffered or stored entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SaxEntry {
    /// Full-cardinality SAX word (first `segments` bytes meaningful).
    pub word: Word,
    /// Position in the raw file.
    pub pos: u64,
}

#[derive(Debug, Clone)]
enum NodeKind {
    Internal {
        split_segment: u16,
        children: [u32; 2],
    },
    Leaf {
        leaf: u32,
    },
}

#[derive(Debug, Clone)]
struct Node {
    mask: IsaxMask,
    kind: NodeKind,
}

#[derive(Debug, Default)]
struct LeafState {
    /// Disk blocks holding flushed entries, in write order.
    blocks: Vec<u32>,
    /// Entries on disk.
    disk_count: u32,
    /// Buffered (in-memory, not yet flushed) entries.
    buffer: Vec<SaxEntry>,
    /// True when the leaf cannot be split further (identical words).
    oversized: bool,
}

/// Counters the experiments report.
#[derive(Debug, Clone, Copy, Default)]
pub struct PrefixTreeStats {
    /// Number of leaf splits performed.
    pub splits: u64,
    /// Number of buffer-flush cycles (memory pressure events).
    pub flush_cycles: u64,
}

/// A top-down, buffered iSAX prefix tree.
pub struct PrefixTree {
    sax: SaxConfig,
    capacity: usize,
    buffer_budget: u64,
    file: Arc<CountedFile>,
    nodes: Vec<Node>,
    leaves: Vec<LeafState>,
    root: Option<u32>,
    buffered_bytes: u64,
    entry_count: u64,
    next_block: u32,
    free_blocks: Vec<u32>,
    stats: PrefixTreeStats,
}

impl PrefixTree {
    /// Entry size on disk: `segments` word bytes + 8 position bytes.
    pub fn entry_bytes(sax: &SaxConfig) -> usize {
        sax.segments + 8
    }

    /// A new, empty tree writing its leaf blocks into `file`.
    pub fn new(
        sax: SaxConfig,
        leaf_capacity: usize,
        buffer_budget: u64,
        file: Arc<CountedFile>,
    ) -> Result<Self> {
        sax.validate()?;
        if sax.segments > 32 {
            return Err(Error::invalid("prefix tree supports at most 32 segments"));
        }
        if leaf_capacity == 0 {
            return Err(Error::invalid("leaf capacity must be positive"));
        }
        Ok(PrefixTree {
            sax,
            capacity: leaf_capacity,
            buffer_budget: buffer_budget.max(1),
            file,
            nodes: Vec::new(),
            leaves: Vec::new(),
            root: None,
            buffered_bytes: 0,
            entry_count: 0,
            next_block: 0,
            free_blocks: Vec::new(),
            stats: PrefixTreeStats::default(),
        })
    }

    /// The SAX configuration.
    pub fn sax(&self) -> &SaxConfig {
        &self.sax
    }

    /// Leaf capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total entries inserted.
    pub fn len(&self) -> u64 {
        self.entry_count
    }

    /// True when no entry was inserted.
    pub fn is_empty(&self) -> bool {
        self.entry_count == 0
    }

    /// Build / flush statistics.
    pub fn stats(&self) -> PrefixTreeStats {
        self.stats
    }

    /// Block size in bytes.
    pub fn block_bytes(&self) -> usize {
        self.capacity * Self::entry_bytes(&self.sax)
    }

    /// Physical blocks currently allocated (including freed ones not yet
    /// reused — they still occupy file space).
    pub fn allocated_blocks(&self) -> u32 {
        self.next_block
    }

    fn alloc_block(&mut self) -> u32 {
        if let Some(b) = self.free_blocks.pop() {
            return b;
        }
        let b = self.next_block;
        self.next_block += 1;
        b
    }

    fn block_offset(&self, block: u32) -> u64 {
        block as u64 * self.block_bytes() as u64
    }

    /// Insert one summarized entry (buffered; may trigger a global flush).
    pub fn insert(&mut self, word: &Word, pos: u64) -> Result<()> {
        let entry = SaxEntry { word: *word, pos };
        let leaf_node = match self.root {
            None => {
                let leaf = self.new_leaf();
                let mask = IsaxMask::root(self.sax.segments);
                self.nodes.push(Node {
                    mask,
                    kind: NodeKind::Leaf { leaf },
                });
                let id = (self.nodes.len() - 1) as u32;
                self.root = Some(id);
                id
            }
            Some(root) => self.descend_from(root, word),
        };
        let NodeKind::Leaf { leaf } = self.nodes[leaf_node as usize].kind else {
            unreachable!("descend returns a leaf");
        };
        self.leaves[leaf as usize].buffer.push(entry);
        self.buffered_bytes += Self::entry_bytes(&self.sax) as u64;
        self.entry_count += 1;
        if self.buffered_bytes >= self.buffer_budget {
            self.flush()?;
        }
        Ok(())
    }

    fn new_leaf(&mut self) -> u32 {
        self.leaves.push(LeafState::default());
        (self.leaves.len() - 1) as u32
    }

    /// Descend from `node` to the leaf covering `word`.
    fn descend_from(&self, mut node: u32, word: &Word) -> u32 {
        loop {
            match &self.nodes[node as usize].kind {
                NodeKind::Leaf { .. } => return node,
                NodeKind::Internal {
                    split_segment,
                    children,
                } => {
                    let seg = *split_segment as usize;
                    let child =
                        self.nodes[node as usize]
                            .mask
                            .child_of(seg, word[seg], self.sax.card_bits);
                    node = children[child];
                }
            }
        }
    }

    /// Public descend: the leaf *node id* covering `word` (None if empty).
    pub fn descend(&self, word: &Word) -> Option<u32> {
        self.root.map(|r| self.descend_from(r, word))
    }

    /// The mask of a node.
    pub fn node_mask(&self, node: u32) -> &IsaxMask {
        &self.nodes[node as usize].mask
    }

    /// Children of an internal node.
    pub fn children(&self, node: u32) -> Option<(u32, u32)> {
        match self.nodes[node as usize].kind {
            NodeKind::Internal { children, .. } => Some((children[0], children[1])),
            NodeKind::Leaf { .. } => None,
        }
    }

    /// The root node id.
    pub fn root(&self) -> Option<u32> {
        self.root
    }

    /// Whether `node` is a leaf.
    pub fn is_leaf(&self, node: u32) -> bool {
        matches!(self.nodes[node as usize].kind, NodeKind::Leaf { .. })
    }

    /// The leaf id of a leaf node.
    pub fn leaf_id(&self, node: u32) -> Option<u32> {
        match self.nodes[node as usize].kind {
            NodeKind::Leaf { leaf } => Some(leaf),
            _ => None,
        }
    }

    /// Entries of leaf node `node` (disk + buffer).
    pub fn leaf_entries(&self, node: u32) -> Result<Vec<SaxEntry>> {
        let NodeKind::Leaf { leaf } = self.nodes[node as usize].kind else {
            return Err(Error::invalid("node is not a leaf"));
        };
        let state = &self.leaves[leaf as usize];
        let mut out = Vec::with_capacity(state.disk_count as usize + state.buffer.len());
        self.read_disk_entries(state, &mut out)?;
        out.extend_from_slice(&state.buffer);
        Ok(out)
    }

    /// Total entries in leaf node `node` without touching disk.
    pub fn leaf_len(&self, node: u32) -> usize {
        match self.nodes[node as usize].kind {
            NodeKind::Leaf { leaf } => {
                let s = &self.leaves[leaf as usize];
                s.disk_count as usize + s.buffer.len()
            }
            _ => 0,
        }
    }

    fn read_disk_entries(&self, state: &LeafState, out: &mut Vec<SaxEntry>) -> Result<()> {
        let eb = Self::entry_bytes(&self.sax);
        let mut remaining = state.disk_count as usize;
        let mut buf = vec![0u8; self.block_bytes()];
        for &block in &state.blocks {
            if remaining == 0 {
                break;
            }
            let in_block = remaining.min(self.capacity);
            self.file
                .read_exact_at(&mut buf[..in_block * eb], self.block_offset(block))?;
            for chunk in buf[..in_block * eb].chunks_exact(eb) {
                let mut word = [0u8; 32];
                word[..self.sax.segments].copy_from_slice(&chunk[..self.sax.segments]);
                let pos = u64::from_le_bytes(
                    chunk[self.sax.segments..self.sax.segments + 8]
                        .try_into()
                        .unwrap(),
                );
                out.push(SaxEntry { word, pos });
            }
            remaining -= in_block;
        }
        Ok(())
    }

    fn write_disk_entries(&mut self, leaf: u32, entries: &[SaxEntry]) -> Result<()> {
        let eb = Self::entry_bytes(&self.sax);
        // Free old blocks, allocate fresh ones for the full entry set.
        let old_blocks = std::mem::take(&mut self.leaves[leaf as usize].blocks);
        self.free_blocks.extend(old_blocks);
        let blocks_needed = entries.len().div_ceil(self.capacity).max(1);
        let mut buf = vec![0u8; self.block_bytes()];
        let mut blocks = Vec::with_capacity(blocks_needed);
        for chunk in entries.chunks(self.capacity) {
            let block = self.alloc_block();
            for (i, e) in chunk.iter().enumerate() {
                let at = i * eb;
                buf[at..at + self.sax.segments].copy_from_slice(&e.word[..self.sax.segments]);
                buf[at + self.sax.segments..at + self.sax.segments + 8]
                    .copy_from_slice(&e.pos.to_le_bytes());
            }
            buf[chunk.len() * eb..].fill(0);
            self.file.write_all_at(&buf, self.block_offset(block))?;
            blocks.push(block);
        }
        let state = &mut self.leaves[leaf as usize];
        state.blocks = blocks;
        state.disk_count = entries.len() as u32;
        Ok(())
    }

    /// Flush every buffered entry to disk, splitting overflowing leaves
    /// (one "early flushing of buffers" cycle).
    pub fn flush(&mut self) -> Result<()> {
        if self.buffered_bytes == 0 {
            return Ok(());
        }
        self.stats.flush_cycles += 1;
        // Collect leaf node ids first: splits grow self.nodes.
        let dirty: Vec<u32> = (0..self.nodes.len() as u32)
            .filter(|&n| match self.nodes[n as usize].kind {
                NodeKind::Leaf { leaf } => !self.leaves[leaf as usize].buffer.is_empty(),
                _ => false,
            })
            .collect();
        for node in dirty {
            self.flush_leaf_node(node)?;
        }
        self.buffered_bytes = 0;
        Ok(())
    }

    fn flush_leaf_node(&mut self, node: u32) -> Result<()> {
        let NodeKind::Leaf { leaf } = self.nodes[node as usize].kind else {
            return Ok(());
        };
        let state = &mut self.leaves[leaf as usize];
        if state.buffer.is_empty() {
            return Ok(());
        }
        let total = state.disk_count as usize + state.buffer.len();
        if total <= self.capacity || state.oversized {
            // Read-modify-write of this leaf's block(s).
            let mut all = Vec::with_capacity(total);
            let state_ref = &self.leaves[leaf as usize];
            self.read_disk_entries(state_ref, &mut all)?;
            all.extend_from_slice(&self.leaves[leaf as usize].buffer);
            self.leaves[leaf as usize].buffer.clear();
            self.write_disk_entries(leaf, &all)?;
            return Ok(());
        }
        // Overflow: split (possibly repeatedly through recursion).
        let mut all = Vec::with_capacity(total);
        let state_ref = &self.leaves[leaf as usize];
        self.read_disk_entries(state_ref, &mut all)?;
        all.extend_from_slice(&self.leaves[leaf as usize].buffer);
        self.leaves[leaf as usize].buffer.clear();
        self.leaves[leaf as usize].disk_count = 0;
        let old_blocks = std::mem::take(&mut self.leaves[leaf as usize].blocks);
        self.free_blocks.extend(old_blocks);
        self.split_into(node, all)
    }

    /// Turn leaf `node` into an internal node and distribute `entries` to
    /// fresh children, recursing while a child still overflows.
    fn split_into(&mut self, node: u32, entries: Vec<SaxEntry>) -> Result<()> {
        let mask = self.nodes[node as usize].mask.clone();
        match self.choose_split_segment(&mask, &entries) {
            None => {
                // Identical words: this leaf can never split.
                let NodeKind::Leaf { leaf } = self.nodes[node as usize].kind else {
                    unreachable!()
                };
                self.leaves[leaf as usize].oversized = true;
                self.write_disk_entries(leaf, &entries)
            }
            Some(seg) => {
                self.stats.splits += 1;
                let (left_mask, right_mask) = mask.split(seg, self.sax.card_bits);
                let mut left = Vec::new();
                let mut right = Vec::new();
                for e in entries {
                    if mask.child_of(seg, e.word[seg], self.sax.card_bits) == 0 {
                        left.push(e);
                    } else {
                        right.push(e);
                    }
                }
                // The old leaf state is reused for the left child.
                let NodeKind::Leaf { leaf: left_leaf } = self.nodes[node as usize].kind else {
                    unreachable!()
                };
                let right_leaf = self.new_leaf();
                let left_node = self.nodes.len() as u32;
                self.nodes.push(Node {
                    mask: left_mask,
                    kind: NodeKind::Leaf { leaf: left_leaf },
                });
                let right_node = self.nodes.len() as u32;
                self.nodes.push(Node {
                    mask: right_mask,
                    kind: NodeKind::Leaf { leaf: right_leaf },
                });
                self.nodes[node as usize].kind = NodeKind::Internal {
                    split_segment: seg as u16,
                    children: [left_node, right_node],
                };
                for (child_node, child_entries) in [(left_node, left), (right_node, right)] {
                    if child_entries.is_empty() {
                        continue;
                    }
                    if child_entries.len() > self.capacity {
                        self.split_into(child_node, child_entries)?;
                    } else {
                        let NodeKind::Leaf { leaf } = self.nodes[child_node as usize].kind else {
                            unreachable!()
                        };
                        self.write_disk_entries(leaf, &child_entries)?;
                    }
                }
                Ok(())
            }
        }
    }

    /// The segment whose next unprefixed bit divides `entries` most evenly;
    /// `None` when no segment separates them.
    fn choose_split_segment(&self, mask: &IsaxMask, entries: &[SaxEntry]) -> Option<usize> {
        let mut best: Option<(usize, usize)> = None; // (imbalance, segment)
        for seg in 0..self.sax.segments {
            let bits = mask.bits()[seg];
            if bits >= self.sax.card_bits {
                continue;
            }
            let ones = entries
                .iter()
                .filter(|e| mask.child_of(seg, e.word[seg], self.sax.card_bits) == 1)
                .count();
            let zeros = entries.len() - ones;
            if ones == 0 || zeros == 0 {
                continue; // does not divide at all
            }
            let imbalance = ones.abs_diff(zeros);
            if best.is_none_or(|(bi, _)| imbalance < bi) {
                best = Some((imbalance, seg));
            }
        }
        best.map(|(_, seg)| seg)
    }

    /// Split the leaf covering `word` until it holds at most
    /// `target_capacity` entries (ADS+'s adaptive refinement during query
    /// answering). Returns true if any split happened.
    pub fn refine_for(&mut self, word: &Word, target_capacity: usize) -> Result<bool> {
        let mut any = false;
        loop {
            let Some(node) = self.descend(word) else {
                return Ok(any);
            };
            let len = self.leaf_len(node);
            if len <= target_capacity {
                return Ok(any);
            }
            let NodeKind::Leaf { leaf } = self.nodes[node as usize].kind else {
                unreachable!()
            };
            if self.leaves[leaf as usize].oversized {
                return Ok(any);
            }
            // Load everything and split once; loop re-descends.
            let mut all = Vec::new();
            let state_ref = &self.leaves[leaf as usize];
            self.read_disk_entries(state_ref, &mut all)?;
            all.extend_from_slice(&self.leaves[leaf as usize].buffer);
            self.leaves[leaf as usize].buffer.clear();
            self.leaves[leaf as usize].disk_count = 0;
            let old_blocks = std::mem::take(&mut self.leaves[leaf as usize].blocks);
            self.free_blocks.extend(old_blocks);
            let before_splits = self.stats.splits;
            self.split_into(node, all)?;
            if self.stats.splits == before_splits {
                return Ok(any); // could not split further
            }
            any = true;
        }
    }

    /// Iterate all leaf node ids.
    pub fn leaf_nodes(&self) -> Vec<u32> {
        (0..self.nodes.len() as u32)
            .filter(|&n| self.is_leaf(n))
            .collect()
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> u64 {
        self.leaves.len() as u64
    }

    /// Average occupancy of allocated leaf slots.
    pub fn avg_fill(&self) -> f64 {
        let mut slots = 0u64;
        let mut used = 0u64;
        for s in &self.leaves {
            slots += (s.blocks.len().max(1) * self.capacity) as u64;
            used += s.disk_count as u64 + s.buffer.len() as u64;
        }
        if slots == 0 {
            return 0.0;
        }
        used as f64 / slots as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconut_series::distance::znormalize;
    use coconut_series::gen::{Generator, RandomWalkGen};
    use coconut_storage::{IoStats, TempDir};
    use coconut_summary::sax::Summarizer;

    const LEN: usize = 64;

    fn sax_cfg() -> SaxConfig {
        SaxConfig {
            series_len: LEN,
            segments: 8,
            card_bits: 8,
        }
    }

    fn make_tree(dir: &TempDir, capacity: usize, budget: u64) -> PrefixTree {
        let file = Arc::new(
            CountedFile::create(dir.path().join("pt.bin"), Arc::new(IoStats::new())).unwrap(),
        );
        PrefixTree::new(sax_cfg(), capacity, budget, file).unwrap()
    }

    fn words(n: usize, seed: u64) -> Vec<Word> {
        let mut g = RandomWalkGen::new(seed);
        let mut s = Summarizer::new(sax_cfg());
        (0..n)
            .map(|_| {
                let mut series = g.generate(LEN);
                znormalize(&mut series);
                let mut w = [0u8; 32];
                s.sax_into(&series, &mut w[..8]);
                w
            })
            .collect()
    }

    #[test]
    fn insert_and_retrieve_all() {
        let dir = TempDir::new("ptree").unwrap();
        let mut t = make_tree(&dir, 16, 1 << 20);
        let ws = words(500, 1);
        for (i, w) in ws.iter().enumerate() {
            t.insert(w, i as u64).unwrap();
        }
        t.flush().unwrap();
        assert_eq!(t.len(), 500);
        let mut seen = std::collections::HashSet::new();
        for node in t.leaf_nodes() {
            for e in t.leaf_entries(node).unwrap() {
                assert!(seen.insert(e.pos), "duplicate pos {}", e.pos);
                // Every entry's word must match its leaf's mask.
                assert!(t.node_mask(node).matches(&e.word[..8], t.sax().card_bits));
            }
        }
        assert_eq!(seen.len(), 500);
    }

    #[test]
    fn splits_respect_capacity() {
        let dir = TempDir::new("ptree").unwrap();
        let mut t = make_tree(&dir, 8, 1 << 20);
        let ws = words(300, 2);
        for (i, w) in ws.iter().enumerate() {
            t.insert(w, i as u64).unwrap();
        }
        t.flush().unwrap();
        assert!(t.stats().splits > 0);
        for node in t.leaf_nodes() {
            let len = t.leaf_len(node);
            assert!(len <= 8, "leaf over capacity: {len}");
        }
        // Prefix splitting leaves space unused on average.
        assert!(t.avg_fill() < 1.0);
    }

    #[test]
    fn identical_words_become_oversized_leaf() {
        let dir = TempDir::new("ptree").unwrap();
        let mut t = make_tree(&dir, 4, 1 << 20);
        let w = [7u8; 32];
        for i in 0..20 {
            t.insert(&w, i).unwrap();
        }
        t.flush().unwrap();
        assert_eq!(t.leaf_count(), 1);
        let node = t.descend(&w).unwrap();
        assert_eq!(t.leaf_len(node), 20);
    }

    #[test]
    fn tiny_budget_causes_many_flush_cycles() {
        let dir = TempDir::new("ptree").unwrap();
        // Budget of ~4 entries: flushes constantly, like iSAX 2.0 with RAM
        // far below data size.
        let mut small = make_tree(&dir, 16, 4 * 16);
        let ws = words(400, 3);
        for (i, w) in ws.iter().enumerate() {
            small.insert(w, i as u64).unwrap();
        }
        small.flush().unwrap();
        assert!(
            small.stats().flush_cycles > 50,
            "cycles {}",
            small.stats().flush_cycles
        );

        let dir2 = TempDir::new("ptree").unwrap();
        let mut big = make_tree(&dir2, 16, 1 << 20);
        for (i, w) in ws.iter().enumerate() {
            big.insert(w, i as u64).unwrap();
        }
        big.flush().unwrap();
        assert_eq!(big.stats().flush_cycles, 1);
    }

    #[test]
    fn small_memory_means_more_random_io() {
        // The heart of the paper's Figure 8 argument: shrinking the buffer
        // budget turns top-down construction into random I/O.
        let ws = words(600, 4);
        let run = |budget: u64| {
            let dir = TempDir::new("ptree").unwrap();
            let stats = Arc::new(IoStats::new());
            let file = Arc::new(
                CountedFile::create(dir.path().join("pt.bin"), Arc::clone(&stats)).unwrap(),
            );
            let mut t = PrefixTree::new(sax_cfg(), 16, budget, file).unwrap();
            for (i, w) in ws.iter().enumerate() {
                t.insert(w, i as u64).unwrap();
            }
            t.flush().unwrap();
            stats.snapshot().random_ops()
        };
        let small = run(8 * 16);
        let big = run(1 << 20);
        assert!(
            small > 2 * big,
            "small-memory random ops {small} not >> big-memory {big}"
        );
    }

    #[test]
    fn refine_for_splits_down_to_target() {
        let dir = TempDir::new("ptree").unwrap();
        // Coarse capacity 64 (ADS+ style), then refine to 8 on access.
        let mut t = make_tree(&dir, 64, 1 << 20);
        let ws = words(300, 5);
        for (i, w) in ws.iter().enumerate() {
            t.insert(w, i as u64).unwrap();
        }
        t.flush().unwrap();
        let probe = ws[0];
        let before = t.leaf_len(t.descend(&probe).unwrap());
        let split = t.refine_for(&probe, 8).unwrap();
        let after = t.leaf_len(t.descend(&probe).unwrap());
        if before > 8 {
            assert!(split);
            assert!(after <= 8 || after < before);
        }
        // All original entries still present.
        let total: usize = t.leaf_nodes().iter().map(|&n| t.leaf_len(n)).sum();
        assert_eq!(total, 300);
    }

    #[test]
    fn descend_is_consistent_with_masks() {
        let dir = TempDir::new("ptree").unwrap();
        let mut t = make_tree(&dir, 8, 1 << 20);
        let ws = words(200, 6);
        for (i, w) in ws.iter().enumerate() {
            t.insert(w, i as u64).unwrap();
        }
        t.flush().unwrap();
        for w in &ws {
            let node = t.descend(w).unwrap();
            assert!(t.node_mask(node).matches(&w[..8], 8));
        }
    }
}
