//! Serial scan: the brute-force baseline and the tests' ground truth.
//!
//! "The brute-force approach for evaluating nearest neighbor queries is by
//! performing a sequential pass over the complete dataset" (paper
//! Section 2). No index is built; exact search streams the raw file once
//! with early abandoning.

use coconut_series::dataset::Dataset;
use coconut_series::distance::euclidean_sq_early_abandon;
use coconut_series::index::{Answer, QueryStats, SeriesIndex};
use coconut_series::Value;
use coconut_storage::{Error, Result};

/// The no-index baseline.
pub struct SerialScan {
    dataset: Dataset,
}

impl SerialScan {
    /// A scanner over `dataset`.
    pub fn new(dataset: &Dataset) -> Self {
        SerialScan {
            dataset: dataset.clone(),
        }
    }

    fn check(&self, query: &[Value]) -> Result<()> {
        if query.len() != self.dataset.series_len() {
            return Err(Error::invalid("query length != series length"));
        }
        Ok(())
    }

    /// One full sequential pass with early abandoning.
    pub fn nearest(&self, query: &[Value]) -> Result<(Answer, QueryStats)> {
        self.check(query)?;
        let mut best = Answer::none();
        let mut best_sq = f64::INFINITY;
        let mut stats = QueryStats::default();
        let mut scan = self.dataset.scan();
        while let Some((pos, s)) = scan.next_series()? {
            stats.records_fetched += 1;
            if let Some(d_sq) = euclidean_sq_early_abandon(query, s, best_sq) {
                if d_sq < best_sq {
                    best_sq = d_sq;
                    best = Answer {
                        pos,
                        dist: d_sq.sqrt(),
                    };
                }
            }
        }
        Ok((best, stats))
    }
}

impl SeriesIndex for SerialScan {
    fn name(&self) -> String {
        "SerialScan".into()
    }

    fn approximate(&self, query: &[Value]) -> Result<Answer> {
        // A scan has no cheap approximation; it always answers exactly.
        Ok(self.nearest(query)?.0)
    }

    fn exact(&self, query: &[Value]) -> Result<(Answer, QueryStats)> {
        self.nearest(query)
    }

    fn disk_bytes(&self) -> u64 {
        0 // no index structure at all
    }

    fn leaf_count(&self) -> u64 {
        0
    }

    fn avg_leaf_fill(&self) -> f64 {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconut_series::dataset::write_dataset;
    use coconut_series::distance::{euclidean, znormalize};
    use coconut_series::gen::{Generator, RandomWalkGen};
    use coconut_storage::{IoStats, TempDir};
    use std::sync::Arc;

    #[test]
    fn finds_true_nearest() {
        let dir = TempDir::new("scan").unwrap();
        let stats = Arc::new(IoStats::new());
        let path = dir.path().join("d.bin");
        write_dataset(&path, &mut RandomWalkGen::new(3), 200, 32, &stats).unwrap();
        let ds = Dataset::open(&path, stats).unwrap();
        let scan = SerialScan::new(&ds);
        let mut q = RandomWalkGen::new(9).generate(32);
        znormalize(&mut q);
        let (ans, st) = scan.nearest(&q).unwrap();
        assert_eq!(st.records_fetched, 200);
        // Naive check.
        let mut best = Answer::none();
        for pos in 0..200 {
            let s = ds.get(pos).unwrap();
            best.merge(Answer {
                pos,
                dist: euclidean(&q, &s),
            });
        }
        assert_eq!(ans.pos, best.pos);
        assert!((ans.dist - best.dist).abs() < 1e-9);
    }

    #[test]
    fn member_query_finds_itself() {
        let dir = TempDir::new("scan").unwrap();
        let stats = Arc::new(IoStats::new());
        let path = dir.path().join("d.bin");
        write_dataset(&path, &mut RandomWalkGen::new(4), 50, 32, &stats).unwrap();
        let ds = Dataset::open(&path, stats).unwrap();
        let scan = SerialScan::new(&ds);
        let member = ds.get(17).unwrap();
        let (ans, _) = scan.nearest(&member).unwrap();
        assert_eq!(ans.dist, 0.0);
        assert_eq!(ans.pos, 17);
    }

    #[test]
    fn rejects_bad_query_length() {
        let dir = TempDir::new("scan").unwrap();
        let stats = Arc::new(IoStats::new());
        let path = dir.path().join("d.bin");
        write_dataset(&path, &mut RandomWalkGen::new(4), 10, 32, &stats).unwrap();
        let ds = Dataset::open(&path, stats).unwrap();
        let scan = SerialScan::new(&ds);
        assert!(scan.nearest(&[0.0; 8]).is_err());
    }
}
