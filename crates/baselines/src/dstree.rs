//! DSTree: the data-adaptive and dynamic segmentation index (Wang et al.,
//! PVLDB 2013) — the paper's slowest-building baseline.
//!
//! Every node carries its own segmentation of the series and an EAPCA
//! synopsis: per segment, the min/max of the member series' means and
//! standard deviations. A full leaf splits on the segment whose mean (or
//! standard deviation) range is widest, optionally refining the
//! segmentation, and redistributes its members — which requires re-reading
//! the raw series it stored, top-down, one insert at a time. That is why
//! the paper reports DSTree construction "requires more than 24 hours" at
//! scale.
//!
//! The lower bound used for exact search follows from two facts about any
//! segment of length `l`: `||x - y||²` over the segment decomposes into
//! `l·(μx − μy)²` plus the centered residual, and the residual is at least
//! `l·(σx − σy)²` by the reverse triangle inequality. Replacing the member
//! statistics with the node's min/max intervals gives a valid bound for
//! every series below the node.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use coconut_series::dataset::Dataset;
use coconut_series::distance::euclidean_sq_early_abandon;
use coconut_series::index::{Answer, QueryStats, SeriesIndex};
use coconut_series::Value;
use coconut_storage::{CountedFile, Error, Result};

use crate::heap::MinHeap;

static DSTREE_ID: AtomicU64 = AtomicU64::new(0);

/// Per-segment synopsis interval.
#[derive(Debug, Clone, Copy)]
struct SegStat {
    min_mean: f64,
    max_mean: f64,
    min_std: f64,
    max_std: f64,
}

impl SegStat {
    fn empty() -> Self {
        SegStat {
            min_mean: f64::INFINITY,
            max_mean: f64::NEG_INFINITY,
            min_std: f64::INFINITY,
            max_std: f64::NEG_INFINITY,
        }
    }

    fn add(&mut self, mean: f64, std: f64) {
        self.min_mean = self.min_mean.min(mean);
        self.max_mean = self.max_mean.max(mean);
        self.min_std = self.min_std.min(std);
        self.max_std = self.max_std.max(std);
    }
}

#[derive(Debug, Clone, Copy)]
struct Split {
    /// Segment bounds the routing statistic is computed over.
    start: usize,
    end: usize,
    /// Route by standard deviation instead of mean.
    use_std: bool,
    threshold: f64,
}

#[derive(Debug)]
enum NodeKind {
    Leaf {
        /// (file offset, record count) chunks on disk.
        chunks: Vec<(u64, u32)>,
        disk_count: u32,
        /// Buffered records: (pos, series).
        buffer: Vec<(u64, Vec<Value>)>,
        /// True when further splits are impossible.
        unsplittable: bool,
    },
    Internal {
        split: Split,
        children: [u32; 2],
    },
}

#[derive(Debug)]
struct DsNode {
    /// Segment end offsets (last == series_len).
    segmentation: Vec<usize>,
    synopsis: Vec<SegStat>,
    kind: NodeKind,
}

/// Prefix sums used to compute segment means/stds in O(1) per segment.
struct Prefix {
    sum: Vec<f64>,
    sum_sq: Vec<f64>,
}

impl Prefix {
    fn new(series: &[Value]) -> Self {
        let mut sum = Vec::with_capacity(series.len() + 1);
        let mut sum_sq = Vec::with_capacity(series.len() + 1);
        sum.push(0.0);
        sum_sq.push(0.0);
        let (mut a, mut b) = (0.0f64, 0.0f64);
        for &v in series {
            a += v as f64;
            b += (v as f64) * (v as f64);
            sum.push(a);
            sum_sq.push(b);
        }
        Prefix { sum, sum_sq }
    }

    #[inline]
    fn mean_std(&self, start: usize, end: usize) -> (f64, f64) {
        let l = (end - start) as f64;
        let mean = (self.sum[end] - self.sum[start]) / l;
        let var = ((self.sum_sq[end] - self.sum_sq[start]) / l - mean * mean).max(0.0);
        (mean, var.sqrt())
    }
}

/// The DSTree index (materialized: leaves store raw series).
pub struct DsTree {
    series_len: usize,
    leaf_capacity: usize,
    file: Arc<CountedFile>,
    nodes: Vec<DsNode>,
    root: u32,
    entry_count: u64,
    splits: u64,
}

/// Buffered records per leaf before spilling a chunk to disk.
const LEAF_BUFFER: usize = 64;
/// Initial number of equal segments at the root.
const INITIAL_SEGMENTS: usize = 4;

impl DsTree {
    fn record_bytes(&self) -> usize {
        8 + self.series_len * 4
    }

    /// Build by top-down insertion over all of `dataset`.
    pub fn build(dataset: &Dataset, leaf_capacity: usize, dir: &Path) -> Result<Self> {
        if leaf_capacity == 0 {
            return Err(Error::invalid("leaf capacity must be positive"));
        }
        let id = DSTREE_ID.fetch_add(1, Ordering::Relaxed);
        let stats = Arc::clone(dataset.file().stats());
        let file = Arc::new(CountedFile::create(
            dir.join(format!("dstree-{id}.idx")),
            stats,
        )?);
        let series_len = dataset.series_len();
        let segments = INITIAL_SEGMENTS.min(series_len);
        let segmentation: Vec<usize> = (1..=segments).map(|i| i * series_len / segments).collect();
        let root = DsNode {
            synopsis: vec![SegStat::empty(); segmentation.len()],
            segmentation,
            kind: NodeKind::Leaf {
                chunks: Vec::new(),
                disk_count: 0,
                buffer: Vec::new(),
                unsplittable: false,
            },
        };
        let mut tree = DsTree {
            series_len,
            leaf_capacity,
            file,
            nodes: vec![root],
            root: 0,
            entry_count: 0,
            splits: 0,
        };
        let mut scan = dataset.scan();
        while let Some((pos, series)) = scan.next_series()? {
            tree.insert(pos, series)?;
        }
        tree.flush_all()?;
        Ok(tree)
    }

    fn insert(&mut self, pos: u64, series: &[Value]) -> Result<()> {
        let prefix = Prefix::new(series);
        let mut node = self.root;
        loop {
            // Update this node's synopsis under its own segmentation.
            let seg = self.nodes[node as usize].segmentation.clone();
            let mut start = 0;
            for (i, &end) in seg.iter().enumerate() {
                let (m, s) = prefix.mean_std(start, end);
                self.nodes[node as usize].synopsis[i].add(m, s);
                start = end;
            }
            match &mut self.nodes[node as usize].kind {
                NodeKind::Internal { split, children } => {
                    let (m, s) = prefix.mean_std(split.start, split.end);
                    let v = if split.use_std { s } else { m };
                    node = children[usize::from(v > split.threshold)];
                }
                NodeKind::Leaf {
                    buffer, disk_count, ..
                } => {
                    buffer.push((pos, series.to_vec()));
                    self.entry_count += 1;
                    let total = *disk_count as usize + buffer.len();
                    if buffer.len() >= LEAF_BUFFER && total <= self.leaf_capacity {
                        self.spill_leaf(node)?;
                    } else if total > self.leaf_capacity {
                        self.split_leaf(node)?;
                    }
                    return Ok(());
                }
            }
        }
    }

    /// Append the leaf's buffered records as one chunk at end of file.
    fn spill_leaf(&mut self, node: u32) -> Result<()> {
        let rb = self.record_bytes();
        let (bytes, count) = {
            let NodeKind::Leaf { buffer, .. } = &mut self.nodes[node as usize].kind else {
                return Ok(());
            };
            if buffer.is_empty() {
                return Ok(());
            }
            let mut bytes = Vec::with_capacity(buffer.len() * rb);
            for (pos, series) in buffer.iter() {
                bytes.extend_from_slice(&pos.to_le_bytes());
                for &v in series {
                    bytes.extend_from_slice(&v.to_le_bytes());
                }
            }
            let count = buffer.len() as u32;
            buffer.clear();
            (bytes, count)
        };
        let offset = self.file.append(&bytes)?;
        if let NodeKind::Leaf {
            chunks, disk_count, ..
        } = &mut self.nodes[node as usize].kind
        {
            chunks.push((offset, count));
            *disk_count += count;
        }
        Ok(())
    }

    /// All records of a leaf (disk chunks + buffer).
    fn leaf_records(&self, node: u32) -> Result<Vec<(u64, Vec<Value>)>> {
        let rb = self.record_bytes();
        let NodeKind::Leaf {
            chunks,
            buffer,
            disk_count,
            ..
        } = &self.nodes[node as usize].kind
        else {
            return Err(Error::invalid("node is not a leaf"));
        };
        let mut out = Vec::with_capacity(*disk_count as usize + buffer.len());
        for &(offset, count) in chunks {
            let mut bytes = vec![0u8; count as usize * rb];
            self.file.read_exact_at(&mut bytes, offset)?;
            for rec in bytes.chunks_exact(rb) {
                let pos = u64::from_le_bytes(rec[..8].try_into().unwrap());
                let series: Vec<Value> = rec[8..]
                    .chunks_exact(4)
                    .map(|c| Value::from_le_bytes(c.try_into().unwrap()))
                    .collect();
                out.push((pos, series));
            }
        }
        out.extend(buffer.iter().cloned());
        Ok(out)
    }

    fn split_leaf(&mut self, node: u32) -> Result<()> {
        // Pull every record back (the re-reading the paper charges DSTree
        // for), choose the widest-range statistic, redistribute.
        let records = self.leaf_records(node)?;
        let seg = self.nodes[node as usize].segmentation.clone();
        let synopsis = self.nodes[node as usize].synopsis.clone();

        let mut best: Option<(f64, usize, bool)> = None; // (range, segment, use_std)
        let mut start = 0usize;
        for (i, &end) in seg.iter().enumerate() {
            let st = synopsis[i];
            let mean_range = st.max_mean - st.min_mean;
            let std_range = st.max_std - st.min_std;
            if best.as_ref().is_none_or(|&(r, _, _)| mean_range > r) && mean_range > 0.0 {
                best = Some((mean_range, i, false));
            }
            if best.as_ref().is_none_or(|&(r, _, _)| std_range > r) && std_range > 0.0 {
                best = Some((std_range, i, true));
            }
            start = end;
        }
        let _ = start;
        let Some((_, seg_i, use_std)) = best else {
            // All statistics identical: leaf cannot be split.
            if let NodeKind::Leaf { unsplittable, .. } = &mut self.nodes[node as usize].kind {
                *unsplittable = true;
            }
            return self.spill_leaf(node);
        };
        let seg_start = if seg_i == 0 { 0 } else { seg[seg_i - 1] };
        let seg_end = seg[seg_i];
        let st = synopsis[seg_i];
        let threshold = if use_std {
            0.5 * (st.min_std + st.max_std)
        } else {
            0.5 * (st.min_mean + st.max_mean)
        };
        let split = Split {
            start: seg_start,
            end: seg_end,
            use_std,
            threshold,
        };

        // Children refine the split segment (dynamic segmentation) when it
        // is long enough to halve.
        let mut child_seg = seg.clone();
        if seg_end - seg_start >= 2 {
            let mid = (seg_start + seg_end) / 2;
            child_seg.insert(seg_i, mid);
        }

        let mk_child = |segmentation: &Vec<usize>| DsNode {
            synopsis: vec![SegStat::empty(); segmentation.len()],
            segmentation: segmentation.clone(),
            kind: NodeKind::Leaf {
                chunks: Vec::new(),
                disk_count: 0,
                buffer: Vec::new(),
                unsplittable: false,
            },
        };
        let left = self.nodes.len() as u32;
        self.nodes.push(mk_child(&child_seg));
        let right = self.nodes.len() as u32;
        self.nodes.push(mk_child(&child_seg));
        self.nodes[node as usize].kind = NodeKind::Internal {
            split,
            children: [left, right],
        };
        self.splits += 1;

        for (pos, series) in records {
            let prefix = Prefix::new(&series);
            let (m, s) = prefix.mean_std(split.start, split.end);
            let v = if split.use_std { s } else { m };
            let child = if v > split.threshold { right } else { left };
            // Update the child synopsis and buffer the record.
            let cseg = self.nodes[child as usize].segmentation.clone();
            let mut cs = 0usize;
            for (i, &end) in cseg.iter().enumerate() {
                let (m, s) = prefix.mean_std(cs, end);
                self.nodes[child as usize].synopsis[i].add(m, s);
                cs = end;
            }
            if let NodeKind::Leaf { buffer, .. } = &mut self.nodes[child as usize].kind {
                buffer.push((pos, series));
            }
            // entry_count unchanged: these records were counted when first
            // inserted.
        }
        // A degenerate split (everything on one side) could overflow again;
        // recurse if needed.
        for child in [left, right] {
            let len = self.leaf_len(child);
            if len > self.leaf_capacity {
                self.split_leaf(child)?;
            } else if len >= LEAF_BUFFER {
                self.spill_leaf(child)?;
            }
        }
        Ok(())
    }

    fn leaf_len(&self, node: u32) -> usize {
        match &self.nodes[node as usize].kind {
            NodeKind::Leaf {
                disk_count, buffer, ..
            } => *disk_count as usize + buffer.len(),
            _ => 0,
        }
    }

    fn flush_all(&mut self) -> Result<()> {
        for node in 0..self.nodes.len() as u32 {
            if matches!(self.nodes[node as usize].kind, NodeKind::Leaf { .. }) {
                self.spill_leaf(node)?;
            }
        }
        Ok(())
    }

    /// Entries indexed.
    pub fn len(&self) -> u64 {
        self.entry_count
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entry_count == 0
    }

    /// Number of leaf splits performed during construction.
    pub fn split_count(&self) -> u64 {
        self.splits
    }

    /// Lower bound between the query (via its prefix sums) and `node`.
    fn node_lower_bound(&self, prefix: &Prefix, node: u32) -> f64 {
        let n = &self.nodes[node as usize];
        let mut acc = 0.0f64;
        let mut start = 0usize;
        for (i, &end) in n.segmentation.iter().enumerate() {
            let st = &n.synopsis[i];
            if st.min_mean > st.max_mean {
                // Empty synopsis: nothing inserted below this node.
                start = end;
                continue;
            }
            let l = (end - start) as f64;
            let (qm, qs) = prefix.mean_std(start, end);
            let dm = if qm < st.min_mean {
                st.min_mean - qm
            } else if qm > st.max_mean {
                qm - st.max_mean
            } else {
                0.0
            };
            let ds = if qs < st.min_std {
                st.min_std - qs
            } else if qs > st.max_std {
                qs - st.max_std
            } else {
                0.0
            };
            acc += l * (dm * dm + ds * ds);
            start = end;
        }
        acc.sqrt()
    }

    fn eval_leaf(
        &self,
        node: u32,
        query: &[Value],
        best: &mut Answer,
        best_sq: &mut f64,
        stats: &mut QueryStats,
    ) -> Result<()> {
        stats.leaves_visited += 1;
        for (pos, series) in self.leaf_records(node)? {
            stats.records_fetched += 1;
            if let Some(d_sq) = euclidean_sq_early_abandon(query, &series, *best_sq) {
                if d_sq < *best_sq {
                    *best_sq = d_sq;
                    *best = Answer {
                        pos,
                        dist: d_sq.sqrt(),
                    };
                }
            }
        }
        Ok(())
    }

    /// Approximate search: route the query to one leaf.
    pub fn approximate_search(&self, query: &[Value]) -> Result<Answer> {
        if query.len() != self.series_len {
            return Err(Error::invalid("query length mismatch"));
        }
        if self.is_empty() {
            return Ok(Answer::none());
        }
        let prefix = Prefix::new(query);
        let mut node = self.root;
        while let NodeKind::Internal { split, children } = &self.nodes[node as usize].kind {
            let (m, s) = prefix.mean_std(split.start, split.end);
            let v = if split.use_std { s } else { m };
            node = children[usize::from(v > split.threshold)];
        }
        let mut best = Answer::none();
        let mut best_sq = f64::INFINITY;
        let mut stats = QueryStats::default();
        self.eval_leaf(node, query, &mut best, &mut best_sq, &mut stats)?;
        Ok(best)
    }

    /// Exact search: best-first over the EAPCA lower bounds.
    pub fn exact_search(&self, query: &[Value]) -> Result<(Answer, QueryStats)> {
        let mut stats = QueryStats::default();
        if query.len() != self.series_len {
            return Err(Error::invalid("query length mismatch"));
        }
        if self.is_empty() {
            return Ok((Answer::none(), stats));
        }
        let prefix = Prefix::new(query);
        let mut best = self.approximate_search(query)?;
        let mut best_sq = if best.is_some() {
            best.dist * best.dist
        } else {
            f64::INFINITY
        };
        let mut heap = MinHeap::new();
        heap.push(self.node_lower_bound(&prefix, self.root), self.root);
        stats.lower_bounds += 1;
        while let Some((bound, node)) = heap.pop() {
            if bound >= best.dist {
                stats.pruned += 1;
                continue;
            }
            match &self.nodes[node as usize].kind {
                NodeKind::Leaf { .. } => {
                    self.eval_leaf(node, query, &mut best, &mut best_sq, &mut stats)?;
                }
                NodeKind::Internal { children, .. } => {
                    for &c in children {
                        let lb = self.node_lower_bound(&prefix, c);
                        stats.lower_bounds += 1;
                        if lb < best.dist {
                            heap.push(lb, c);
                        } else {
                            stats.pruned += 1;
                        }
                    }
                }
            }
        }
        Ok((best, stats))
    }

    /// Number of leaf nodes.
    fn count_leaves(&self) -> u64 {
        self.nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Leaf { .. }))
            .count() as u64
    }
}

impl SeriesIndex for DsTree {
    fn name(&self) -> String {
        "DSTree".into()
    }

    fn approximate(&self, query: &[Value]) -> Result<Answer> {
        self.approximate_search(query)
    }

    fn exact(&self, query: &[Value]) -> Result<(Answer, QueryStats)> {
        self.exact_search(query)
    }

    fn disk_bytes(&self) -> u64 {
        self.file.len()
    }

    fn leaf_count(&self) -> u64 {
        self.count_leaves()
    }

    fn avg_leaf_fill(&self) -> f64 {
        let leaves = self.count_leaves();
        if leaves == 0 {
            return 0.0;
        }
        self.entry_count as f64 / (leaves * self.leaf_capacity as u64) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconut_series::dataset::write_dataset;
    use coconut_series::distance::{euclidean, znormalize};
    use coconut_series::gen::{Generator, RandomWalkGen};
    use coconut_storage::{IoStats, TempDir};

    const LEN: usize = 64;

    fn make_dataset(dir: &TempDir, n: u64) -> Dataset {
        let stats = Arc::new(IoStats::new());
        let path = dir.path().join("data.bin");
        write_dataset(&path, &mut RandomWalkGen::new(71), n, LEN, &stats).unwrap();
        Dataset::open(&path, stats).unwrap()
    }

    fn brute_force(ds: &Dataset, q: &[Value]) -> Answer {
        let mut best = Answer::none();
        let mut scan = ds.scan();
        while let Some((pos, s)) = scan.next_series().unwrap() {
            best.merge(Answer {
                pos,
                dist: euclidean(q, s),
            });
        }
        best
    }

    fn query(seed: u64) -> Vec<Value> {
        let mut q = RandomWalkGen::new(seed).generate(LEN);
        znormalize(&mut q);
        q
    }

    #[test]
    fn build_counts_and_splits() {
        let dir = TempDir::new("dstree").unwrap();
        let ds = make_dataset(&dir, 500);
        let t = DsTree::build(&ds, 32, dir.path()).unwrap();
        assert_eq!(t.len(), 500);
        assert!(t.split_count() > 0);
        assert!(t.leaf_count() > 1);
    }

    #[test]
    fn exact_matches_brute_force() {
        let dir = TempDir::new("dstree").unwrap();
        let ds = make_dataset(&dir, 400);
        let t = DsTree::build(&ds, 32, dir.path()).unwrap();
        for seed in 0..8 {
            let q = query(seed);
            let (ans, _) = t.exact_search(&q).unwrap();
            let expect = brute_force(&ds, &q);
            assert_eq!(ans.pos, expect.pos, "seed {seed}");
            assert!((ans.dist - expect.dist).abs() < 1e-6);
        }
    }

    #[test]
    fn lower_bound_is_valid_for_members() {
        let dir = TempDir::new("dstree").unwrap();
        let ds = make_dataset(&dir, 200);
        let t = DsTree::build(&ds, 16, dir.path()).unwrap();
        let q = query(30);
        let prefix = Prefix::new(&q);
        // For every leaf, the node LB must lower-bound the true distance of
        // every member.
        for node in 0..t.nodes.len() as u32 {
            if !matches!(t.nodes[node as usize].kind, NodeKind::Leaf { .. }) {
                continue;
            }
            let lb = t.node_lower_bound(&prefix, node);
            for (_, series) in t.leaf_records(node).unwrap() {
                let d = euclidean(&q, &series);
                assert!(lb <= d + 1e-6, "lb {lb} > dist {d}");
            }
        }
    }

    #[test]
    fn approximate_never_beats_exact() {
        let dir = TempDir::new("dstree").unwrap();
        let ds = make_dataset(&dir, 300);
        let t = DsTree::build(&ds, 32, dir.path()).unwrap();
        for seed in 10..16 {
            let q = query(seed);
            let approx = t.approximate_search(&q).unwrap();
            let (exact, _) = t.exact_search(&q).unwrap();
            assert!(exact.dist <= approx.dist + 1e-9);
        }
    }

    #[test]
    fn empty_dataset() {
        let dir = TempDir::new("dstree").unwrap();
        let ds = make_dataset(&dir, 0);
        let t = DsTree::build(&ds, 32, dir.path()).unwrap();
        assert!(t.is_empty());
        let q = query(1);
        let (ans, _) = t.exact_search(&q).unwrap();
        assert!(!ans.is_some());
    }

    #[test]
    fn identical_series_unsplittable_leaf() {
        let dir = TempDir::new("dstree").unwrap();
        let stats = Arc::new(IoStats::new());
        let path = dir.path().join("flat.bin");
        let mut w =
            coconut_series::dataset::DatasetWriter::create(&path, LEN, true, Arc::clone(&stats))
                .unwrap();
        // Identical (z-normalized sine) series cannot be separated by any
        // mean/std split.
        let mut s: Vec<Value> = (0..LEN).map(|i| (i as f32 * 0.3).sin()).collect();
        znormalize(&mut s);
        for _ in 0..50 {
            w.append(&s).unwrap();
        }
        w.finish().unwrap();
        let ds = Dataset::open(&path, stats).unwrap();
        let t = DsTree::build(&ds, 16, dir.path()).unwrap();
        assert_eq!(t.len(), 50);
        let (ans, _) = t.exact_search(&s).unwrap();
        assert!(ans.dist < 1e-6);
    }
}
