//! Property-based tests for the storage substrate.

use std::sync::Arc;

use coconut_storage::extsort::U64Codec;
use coconut_storage::{Codec, CountedFile, ExternalSorter, IoStats, PageCache, PageFile, TempDir};
use proptest::prelude::*;

/// A codec with a larger record, to exercise non-trivial serialization.
#[derive(Clone, Copy, Default)]
struct PairCodec;

impl Codec for PairCodec {
    type Item = (u64, u64);
    fn record_size(&self) -> usize {
        16
    }
    fn encode(&self, item: &(u64, u64), buf: &mut [u8]) {
        buf[..8].copy_from_slice(&item.0.to_le_bytes());
        buf[8..].copy_from_slice(&item.1.to_le_bytes());
    }
    fn decode(&self, buf: &[u8]) -> (u64, u64) {
        (
            u64::from_le_bytes(buf[..8].try_into().unwrap()),
            u64::from_le_bytes(buf[8..].try_into().unwrap()),
        )
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn external_sort_equals_std_sort(
        values in proptest::collection::vec(any::<u64>(), 0..2000),
        budget in 1u64..4096,
    ) {
        let dir = TempDir::new("prop-extsort").unwrap();
        let stats = Arc::new(IoStats::new());
        let mut sorter = ExternalSorter::new(U64Codec, budget, dir.path(), stats).unwrap();
        for &v in &values {
            sorter.push(v).unwrap();
        }
        let sorted = sorter.finish().unwrap().collect_all().unwrap();
        let mut expected = values;
        expected.sort_unstable();
        prop_assert_eq!(sorted, expected);
    }

    #[test]
    fn external_sort_pairs_orders_by_first_then_second(
        values in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..1000),
        budget in 1u64..2048,
    ) {
        let dir = TempDir::new("prop-extsort2").unwrap();
        let stats = Arc::new(IoStats::new());
        let mut sorter = ExternalSorter::new(PairCodec, budget, dir.path(), stats).unwrap();
        for &v in &values {
            sorter.push(v).unwrap();
        }
        let sorted = sorter.finish().unwrap().collect_all().unwrap();
        let mut expected = values;
        expected.sort_unstable();
        prop_assert_eq!(sorted, expected);
    }

    #[test]
    fn counted_file_roundtrips_random_chunks(
        chunks in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..200), 1..20),
    ) {
        let dir = TempDir::new("prop-file").unwrap();
        let stats = Arc::new(IoStats::new());
        let f = CountedFile::create(dir.path().join("f.bin"), stats).unwrap();
        let mut offsets = Vec::new();
        for c in &chunks {
            offsets.push(f.append(c).unwrap());
        }
        for (c, &off) in chunks.iter().zip(offsets.iter()) {
            let mut buf = vec![0u8; c.len()];
            f.read_exact_at(&mut buf, off).unwrap();
            prop_assert_eq!(&buf, c);
        }
    }

    #[test]
    fn page_cache_returns_same_bytes_as_disk(
        pages in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 64..=64), 1..20),
        capacity_pages in 1usize..8,
        accesses in proptest::collection::vec(any::<u16>(), 1..100),
    ) {
        let dir = TempDir::new("prop-cache").unwrap();
        let stats = Arc::new(IoStats::new());
        let f = CountedFile::create(dir.path().join("c.bin"), stats).unwrap();
        let pf = PageFile::new(Arc::new(f), 64).unwrap();
        for p in &pages {
            pf.append_page(p).unwrap();
        }
        let cache = PageCache::new((capacity_pages * 64) as u64);
        for a in accesses {
            let page_no = (a as usize) % pages.len();
            let got = cache
                .get(coconut_storage::cache::PageKey { file_id: 0, page_no: page_no as u64 }, &pf)
                .unwrap();
            prop_assert_eq!(&got[..], &pages[page_no][..]);
        }
        let stats = cache.stats();
        prop_assert!(stats.used_bytes <= (capacity_pages * 64) as u64);
    }
}
