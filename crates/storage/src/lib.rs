//! Storage substrate for the Coconut data series indexing library.
//!
//! This crate provides the pieces of the paper's experimental platform that
//! sit *below* any particular index:
//!
//! * [`IoStats`] — I/O accounting in the disk access model of Aggarwal &
//!   Vitter (the cost model used throughout the paper's analysis, Section 3).
//!   Every read and write is classified as *sequential* or *random* so that
//!   experiments can report modeled I/O cost alongside wall-clock time.
//! * [`CountedFile`] — a positioned file handle whose accesses feed
//!   [`IoStats`].
//! * [`PageFile`] and [`PageCache`] — fixed-size page access with an
//!   LRU buffer pool bounded by an explicit byte budget.
//! * [`MemoryBudget`] — a shared, thread-safe byte budget used to emulate
//!   "memory available to the algorithm" (the x-axis of the paper's
//!   Figures 8a/8b and the fixed-memory setting of Figures 8d/8e/10).
//! * [`ExternalSorter`] — bottom-up bulk loading's workhorse: run
//!   generation under a memory budget followed by k-way merge
//!   (the "partitioning" and "merging" phases of Section 3.1).
//! * [`atomic`] — crash-safe file replacement (write-temp + fsync + rename)
//!   and CRC-64 payload checksumming, used by the LSM manifest in
//!   `coconut-core`.
//! * [`fault`] — deterministic, seeded fault injection ([`FaultPlan`]):
//!   injectable I/O errors, short writes, fsync failures, stalls, and
//!   connection drops, hooked through the atomic-write path, the external
//!   sorter's spill path, and the server/client socket layer.
//! * [`metrics`] — lock-free counters, gauges, histograms, and rate meters
//!   with Prometheus text rendering: the aggregation layer the query
//!   server's observability is built on.
//! * [`Deadline`] — a copyable per-operation deadline checked at the query
//!   path's early-abandon checkpoints, backing the server's per-request
//!   latency budgets.
//!
//! Nothing in this crate knows about data series; it works on fixed-size
//! binary records and raw pages.

#![deny(missing_docs)]

pub mod atomic;
pub mod budget;
pub mod cache;
pub mod deadline;
pub mod error;
pub mod extsort;
pub mod fault;
pub mod file;
pub mod iostats;
pub mod metrics;
pub mod pagefile;
pub mod tempdir;

pub use atomic::{atomic_write, crc64};
pub use budget::MemoryBudget;
pub use cache::PageCache;
pub use deadline::Deadline;
pub use error::{Error, Result};
pub use extsort::{Codec, ExternalSorter, MergedStream, RecordStream, SortReport, SortedStream};
pub use fault::{FaultAction, FaultPlan, Trigger};
pub use file::CountedFile;
pub use iostats::{DiskProfile, IoSnapshot, IoStats};
pub use pagefile::PageFile;
pub use tempdir::TempDir;
