//! Deterministic fault injection: a seeded, registry-based generalization
//! of the LSM's original manifest-only kill points.
//!
//! A [`FaultPlan`] is a set of rules, each binding a *site* (a short
//! string naming one instrumented operation, e.g. `atomic.fsync` or
//! `client.connect`) to an *action* (inject an I/O error, truncate a
//! write, fail an fsync, stall, or drop a connection) and a *trigger*
//! (the nth hit, every kth hit, or a seeded per-hit probability).
//! Instrumented code calls the hook functions in this module; with no
//! plan installed they cost one relaxed atomic load.
//!
//! Plans are deterministic: probabilistic triggers draw from a xorshift
//! stream seeded by `plan seed ^ fnv(site)`, so each site sees the same
//! fire/no-fire sequence regardless of how hits at *other* sites
//! interleave. The same spec + seed therefore reproduces the same fault
//! schedule, which is what lets `repro chaos` oracle-check every reply.
//!
//! Two installation scopes exist:
//!
//! * a **process-global** plan ([`install`], [`install_from_env`],
//!   [`clear`]) consulted by every hook — the CLI's `--faults` flag and
//!   the `COCONUT_FAULTS` / `COCONUT_FAULT_SEED` environment variables
//!   land here;
//! * **instance** plans held by individual components (e.g.
//!   `LsmCoconut`'s kill points) and consulted through
//!   [`FaultPlan::fires`] directly, so tests can target one index
//!   without perturbing the rest of the process.
//!
//! ## Spec syntax
//!
//! Comma-separated rules, `site=action[@trigger]`:
//!
//! * actions — `err` (injected I/O error), `short` (write a prefix, then
//!   error), `fsync` (the matching fsync fails), `stall:<ms>` (sleep),
//!   `drop` (close a connection);
//! * triggers — `<n>` (the nth hit only, 1-based), `every:<k>` (every
//!   kth hit), `p:<f>` (probability `f` per hit), or omitted (every hit).
//!
//! Example: `COCONUT_FAULTS='atomic.fsync=err@2,client.connect=drop@p:0.25'`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use crate::error::{Error, Result};

/// Environment variable holding a fault spec applied process-wide.
pub const ENV_SPEC: &str = "COCONUT_FAULTS";
/// Environment variable holding the seed for probabilistic triggers.
pub const ENV_SEED: &str = "COCONUT_FAULT_SEED";

/// What an armed rule does when it fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// Fail the operation with an injected I/O error.
    Err,
    /// Write only a prefix of the payload, then fail (a torn write).
    ShortWrite,
    /// Fail the fsync that was supposed to make the operation durable.
    FsyncErr,
    /// Sleep this long before the operation proceeds normally.
    Stall(Duration),
    /// Drop the connection (socket hooks only; file hooks treat it as
    /// [`FaultAction::Err`]).
    Disconnect,
}

/// When a rule fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// Fire on the nth hit of the site (1-based), exactly once.
    Nth(u64),
    /// Fire on every kth hit of the site.
    Every(u64),
    /// Fire each hit with this probability (in parts per 2^32), drawn
    /// from the site's seeded stream.
    Prob(u32),
    /// Fire on every hit.
    Always,
}

/// One `site=action@trigger` rule with its per-rule hit counter and
/// deterministic random stream.
#[derive(Debug)]
struct Rule {
    site: String,
    action: FaultAction,
    trigger: Trigger,
    hits: AtomicU64,
    /// xorshift64* state for `Trigger::Prob`; seeded per site so streams
    /// are independent of cross-site interleaving.
    rng: Mutex<u64>,
}

impl Rule {
    fn fires(&self) -> bool {
        let hit = self.hits.fetch_add(1, Ordering::Relaxed) + 1;
        match self.trigger {
            Trigger::Nth(n) => hit == n,
            Trigger::Every(k) => hit.is_multiple_of(k),
            Trigger::Always => true,
            Trigger::Prob(ppb) => {
                let mut state = self
                    .rng
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                let mut x = *state;
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                *state = x;
                ((x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 32) as u32) < ppb
            }
        }
    }
}

/// FNV-1a over a site name, used to derive per-site random streams.
fn fnv64(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A parsed, seeded set of fault rules. Cheap to share (`Arc`), safe to
/// consult from any thread.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<Rule>,
    injected: AtomicU64,
}

impl FaultPlan {
    /// An empty plan (no rules; nothing ever fires).
    pub fn empty() -> Self {
        FaultPlan {
            seed: 0,
            rules: Vec::new(),
            injected: AtomicU64::new(0),
        }
    }

    /// Parse a spec string (see the module docs for the syntax) with the
    /// given seed for probabilistic triggers.
    pub fn parse(spec: &str, seed: u64) -> Result<Self> {
        let mut plan = FaultPlan {
            seed,
            rules: Vec::new(),
            injected: AtomicU64::new(0),
        };
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (site, rest) = part.split_once('=').ok_or_else(|| {
                Error::invalid(format!("fault rule '{part}' is not site=action[@trigger]"))
            })?;
            let (action_s, trigger_s) = match rest.split_once('@') {
                Some((a, t)) => (a, Some(t)),
                None => (rest, None),
            };
            let action = parse_action(action_s)?;
            let trigger = match trigger_s {
                None => Trigger::Always,
                Some(t) => parse_trigger(t)?,
            };
            plan.add_rule(site, action, trigger);
        }
        Ok(plan)
    }

    /// Add one rule programmatically (the API `repro chaos` and the LSM
    /// kill points use).
    pub fn add_rule(&mut self, site: &str, action: FaultAction, trigger: Trigger) {
        self.rules.push(Rule {
            site: site.to_string(),
            action,
            trigger,
            hits: AtomicU64::new(0),
            rng: Mutex::new((self.seed ^ fnv64(site)) | 1),
        });
    }

    /// Total faults this plan has injected so far (all rules).
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Record one hit at `site`; returns the firing action, if any.
    /// Stalls are *performed here* (the thread sleeps) and then treated
    /// as non-firing, so callers only branch on error-like actions.
    pub fn fires(&self, site: &str) -> Option<FaultAction> {
        let mut fired = None;
        for rule in self.rules.iter().filter(|r| r.site == site) {
            if !rule.fires() {
                continue;
            }
            if let FaultAction::Stall(d) = rule.action {
                self.injected.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(d);
            } else if fired.is_none() {
                self.injected.fetch_add(1, Ordering::Relaxed);
                fired = Some(rule.action);
            }
        }
        fired
    }

    /// Hit `site`; return an injected-I/O-error `Err` if an error-like
    /// rule fires there (stalls sleep inline, disconnects map to errors
    /// at file sites).
    pub fn check(&self, site: &str) -> Result<()> {
        match self.fires(site) {
            None => Ok(()),
            Some(_) => Err(injected_error(site)),
        }
    }
}

/// The error every injected file-level fault surfaces: an `Error::Io`
/// whose message names the site, so tests and logs can tell injected
/// faults from real ones.
pub fn injected_error(site: &str) -> Error {
    Error::Io(std::io::Error::other(format!(
        "injected fault at {site} (fault plan)"
    )))
}

fn parse_action(s: &str) -> Result<FaultAction> {
    if let Some(ms) = s.strip_prefix("stall:") {
        let ms: u64 = ms
            .parse()
            .map_err(|_| Error::invalid(format!("fault stall wants milliseconds, got '{ms}'")))?;
        return Ok(FaultAction::Stall(Duration::from_millis(ms)));
    }
    match s {
        "err" => Ok(FaultAction::Err),
        "short" => Ok(FaultAction::ShortWrite),
        "fsync" => Ok(FaultAction::FsyncErr),
        "drop" => Ok(FaultAction::Disconnect),
        other => Err(Error::invalid(format!(
            "unknown fault action '{other}' (err|short|fsync|stall:<ms>|drop)"
        ))),
    }
}

fn parse_trigger(s: &str) -> Result<Trigger> {
    if let Some(k) = s.strip_prefix("every:") {
        let k: u64 = k
            .parse()
            .map_err(|_| Error::invalid(format!("fault trigger every: wants an integer: '{k}'")))?;
        if k == 0 {
            return Err(Error::invalid("fault trigger every:0 would never fire"));
        }
        return Ok(Trigger::Every(k));
    }
    if let Some(p) = s.strip_prefix("p:") {
        let p: f64 = p
            .parse()
            .map_err(|_| Error::invalid(format!("fault trigger p: wants a probability: '{p}'")))?;
        if !(0.0..=1.0).contains(&p) {
            return Err(Error::invalid(format!(
                "fault probability {p} outside [0, 1]"
            )));
        }
        return Ok(Trigger::Prob((p * u32::MAX as f64) as u32));
    }
    let n: u64 = s
        .parse()
        .map_err(|_| Error::invalid(format!("unknown fault trigger '{s}'")))?;
    if n == 0 {
        return Err(Error::invalid(
            "fault trigger @0 would never fire (1-based)",
        ));
    }
    Ok(Trigger::Nth(n))
}

/// Fast-path flag: true iff a global plan is installed. Hooks check it
/// with one relaxed load before touching the mutex.
static ACTIVE: AtomicBool = AtomicBool::new(false);

fn global() -> &'static Mutex<Option<Arc<FaultPlan>>> {
    static PLAN: OnceLock<Mutex<Option<Arc<FaultPlan>>>> = OnceLock::new();
    PLAN.get_or_init(|| Mutex::new(None))
}

/// Install `plan` process-wide; every hook consults it until [`clear`].
/// Returns the shared handle (e.g. to read [`FaultPlan::injected`]).
pub fn install(plan: FaultPlan) -> Arc<FaultPlan> {
    let plan = Arc::new(plan);
    *global()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(Arc::clone(&plan));
    ACTIVE.store(true, Ordering::Release);
    plan
}

/// Remove the process-global plan (hooks become no-ops again).
pub fn clear() {
    ACTIVE.store(false, Ordering::Release);
    *global()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = None;
}

/// The currently installed global plan, if any.
pub fn current() -> Option<Arc<FaultPlan>> {
    if !ACTIVE.load(Ordering::Acquire) {
        return None;
    }
    global()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone()
}

/// Install a plan from `COCONUT_FAULTS` (+ optional `COCONUT_FAULT_SEED`)
/// if the variable is set; returns the handle when one was installed.
/// Binaries call this once at startup so operators can inject faults
/// without code changes.
pub fn install_from_env() -> Result<Option<Arc<FaultPlan>>> {
    let Ok(spec) = std::env::var(ENV_SPEC) else {
        return Ok(None);
    };
    if spec.trim().is_empty() {
        return Ok(None);
    }
    let seed = match std::env::var(ENV_SEED) {
        Ok(s) => s
            .parse()
            .map_err(|_| Error::invalid(format!("{ENV_SEED} wants an integer, got '{s}'")))?,
        Err(_) => 0,
    };
    Ok(Some(install(FaultPlan::parse(&spec, seed)?)))
}

/// Hit `site` on the global plan: sleeps through stalls, returns an
/// injected error when an error-like rule fires, and is a no-op (one
/// atomic load) when no plan is installed.
pub fn check(site: &str) -> Result<()> {
    match current() {
        None => Ok(()),
        Some(p) => p.check(site),
    }
}

/// Hit `site` on the global plan and return the firing action (socket
/// hooks use this to distinguish `drop` from `err`).
pub fn fires(site: &str) -> Option<FaultAction> {
    current().and_then(|p| p.fires(site))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_spec() {
        let plan = FaultPlan::parse(
            "atomic.fsync=err@2, client.connect=drop@p:0.5,extsort.spill=short,\
             server.read=stall:5@every:3",
            42,
        )
        .unwrap();
        assert_eq!(plan.rules.len(), 4);
        assert_eq!(plan.rules[0].trigger, Trigger::Nth(2));
        assert_eq!(plan.rules[1].action, FaultAction::Disconnect);
        assert_eq!(plan.rules[2].trigger, Trigger::Always);
        assert_eq!(
            plan.rules[3].action,
            FaultAction::Stall(Duration::from_millis(5))
        );
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "siteonly",
            "a=explode",
            "a=err@zero",
            "a=err@0",
            "a=err@every:0",
            "a=err@p:1.5",
            "a=stall:abc",
        ] {
            assert!(FaultPlan::parse(bad, 0).is_err(), "should reject {bad:?}");
        }
        // Empty specs and stray commas are fine (no rules).
        assert!(FaultPlan::parse("", 0).unwrap().rules.is_empty());
        assert!(FaultPlan::parse(" , ", 0).unwrap().rules.is_empty());
    }

    #[test]
    fn nth_fires_exactly_once() {
        let plan = FaultPlan::parse("x=err@3", 0).unwrap();
        assert!(plan.check("x").is_ok());
        assert!(plan.check("x").is_ok());
        let err = plan.check("x").unwrap_err();
        assert!(err.to_string().contains("injected fault at x"), "{err}");
        for _ in 0..10 {
            assert!(plan.check("x").is_ok());
        }
        assert_eq!(plan.injected(), 1);
    }

    #[test]
    fn every_fires_periodically_and_sites_are_independent() {
        let plan = FaultPlan::parse("a=err@every:2,b=err@every:3", 0).unwrap();
        let fired_a: Vec<bool> = (0..6).map(|_| plan.check("a").is_err()).collect();
        let fired_b: Vec<bool> = (0..6).map(|_| plan.check("b").is_err()).collect();
        assert_eq!(fired_a, [false, true, false, true, false, true]);
        assert_eq!(fired_b, [false, false, true, false, false, true]);
        assert!(plan.check("unknown.site").is_ok());
    }

    #[test]
    fn probability_stream_is_deterministic_per_seed() {
        let sample = |seed: u64| -> Vec<bool> {
            let plan = FaultPlan::parse("s=err@p:0.5", seed).unwrap();
            (0..64).map(|_| plan.check("s").is_err()).collect()
        };
        assert_eq!(sample(7), sample(7));
        assert_ne!(sample(7), sample(8));
        let fired = sample(7).iter().filter(|&&f| f).count();
        assert!((8..=56).contains(&fired), "p=0.5 fired {fired}/64 times");
    }

    #[test]
    fn global_install_clear_roundtrip() {
        // Serialized with other global-state tests by the env lock the
        // suite does not have; keep the window tiny and always clear.
        clear();
        assert!(check("g.site").is_ok());
        let handle = install(FaultPlan::parse("g.site=err", 0).unwrap());
        assert!(check("g.site").is_err());
        assert_eq!(handle.injected(), 1);
        assert!(matches!(fires("g.site"), Some(FaultAction::Err)));
        clear();
        assert!(check("g.site").is_ok());
    }

    #[test]
    fn stall_sleeps_but_does_not_error() {
        let plan = FaultPlan::parse("s=stall:10", 0).unwrap();
        let t0 = std::time::Instant::now();
        assert!(plan.check("s").is_ok());
        assert!(t0.elapsed() >= Duration::from_millis(10));
        assert_eq!(plan.injected(), 1);
    }
}
