//! Cooperative per-operation deadlines.
//!
//! A [`Deadline`] is a copyable "finish by this instant" token threaded
//! through long-running operations (the SIMS exact scan, multi-run LSM
//! queries). The operation calls [`Deadline::check`] at its natural
//! checkpoints — the same places the early-abandon logic already inspects
//! the best-so-far — and aborts with [`Error::Deadline`] when the instant
//! has passed. Checks are a single branch when no deadline is set, so the
//! unbounded path pays nothing.
//!
//! The query server uses this to enforce per-request latency budgets: an
//! expired deadline surfaces as a typed timeout response, never a hung
//! worker.

use std::time::{Duration, Instant};

use crate::error::{Error, Result};

/// An optional completion deadline. `Deadline::NONE` never expires.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct Deadline(Option<Instant>);

impl Deadline {
    /// The absent deadline: [`Deadline::check`] always succeeds.
    pub const NONE: Deadline = Deadline(None);

    /// A deadline at the given instant.
    pub fn at(instant: Instant) -> Self {
        Deadline(Some(instant))
    }

    /// A deadline `budget` from now.
    pub fn after(budget: Duration) -> Self {
        Deadline(Some(Instant::now() + budget))
    }

    /// True when no deadline is set.
    pub fn is_none(&self) -> bool {
        self.0.is_none()
    }

    /// True when a deadline is set and has already passed.
    pub fn expired(&self) -> bool {
        self.0.is_some_and(|t| Instant::now() >= t)
    }

    /// The underlying instant, if a deadline is set.
    pub fn instant(&self) -> Option<Instant> {
        self.0
    }

    /// Fail with [`Error::Deadline`] if the deadline has passed.
    #[inline]
    pub fn check(&self) -> Result<()> {
        match self.0 {
            Some(t) if Instant::now() >= t => Err(Error::deadline(format!(
                "operation overran its deadline by {:.1} ms",
                t.elapsed().as_secs_f64() * 1e3
            ))),
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_expires() {
        let d = Deadline::NONE;
        assert!(d.is_none());
        assert!(!d.expired());
        d.check().unwrap();
        assert_eq!(Deadline::default(), Deadline::NONE);
    }

    #[test]
    fn future_deadline_passes_then_expires() {
        let d = Deadline::after(Duration::from_secs(3600));
        assert!(!d.is_none());
        assert!(!d.expired());
        d.check().unwrap();

        let past = Deadline::at(Instant::now() - Duration::from_millis(5));
        assert!(past.expired());
        let err = past.check().unwrap_err();
        assert!(err.is_deadline(), "{err}");
        assert!(err.to_string().contains("deadline exceeded"), "{err}");
    }
}
