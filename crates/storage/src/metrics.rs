//! Cheap atomic metrics with Prometheus text rendering.
//!
//! The observability substrate for the query server (and anything else that
//! wants counters): lock-free [`Counter`]s, [`Gauge`]s, log-bucketed
//! [`Histogram`]s, and a sliding-window [`RateMeter`], collected in a
//! [`Registry`] that renders the whole set in the Prometheus text exposition
//! format (version 0.0.4). Every update is a handful of relaxed atomic
//! operations, so metrics can sit directly on query hot paths; rendering is
//! the only operation that allocates.
//!
//! The workspace's existing instrumentation ([`crate::IoStats`],
//! `QueryStats` in `coconut-series`) stays the per-operation measurement
//! layer; this module is the *aggregation* layer those numbers are folded
//! into over the lifetime of a process.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge holding one `f64` that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A histogram over fixed bucket upper bounds (plus an implicit `+Inf`),
/// with a total sum and count — enough for Prometheus `_bucket`/`_sum`/
/// `_count` series and server-side quantile estimates.
#[derive(Debug)]
pub struct Histogram {
    /// Inclusive upper bounds, strictly increasing.
    bounds: Box<[f64]>,
    /// One count per bound, plus a final overflow (`+Inf`) bucket.
    counts: Box<[AtomicU64]>,
    /// Total observations.
    count: AtomicU64,
    /// Sum of observations in fixed-point micro-units (1e-6), so `observe`
    /// stays a pair of atomic adds.
    sum_micro: AtomicU64,
}

impl Histogram {
    /// A histogram over explicit bucket upper bounds (must be positive and
    /// strictly increasing).
    pub fn new(bounds: &[f64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        Histogram {
            bounds: bounds.into(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_micro: AtomicU64::new(0),
        }
    }

    /// `n` exponential buckets: `start, start*factor, start*factor², ...`.
    pub fn exponential(start: f64, factor: f64, n: usize) -> Self {
        debug_assert!(start > 0.0 && factor > 1.0 && n > 0);
        let mut bounds = Vec::with_capacity(n);
        let mut b = start;
        for _ in 0..n {
            bounds.push(b);
            b *= factor;
        }
        Self::new(&bounds)
    }

    /// Record one observation.
    #[inline]
    pub fn observe(&self, v: f64) {
        let i = self.bounds.partition_point(|&b| b < v);
        self.counts[i].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let micro = (v * 1e6).max(0.0) as u64;
        self.sum_micro.fetch_add(micro, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum_micro.load(Ordering::Relaxed) as f64 / 1e6
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) by linear interpolation
    /// inside the bucket holding the target rank — the same estimate
    /// Prometheus's `histogram_quantile` computes. Returns 0 when empty;
    /// observations beyond the last bound clamp to it.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let target = q.clamp(0.0, 1.0) * total as f64;
        let mut cumulative = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            let in_bucket = c.load(Ordering::Relaxed);
            if in_bucket == 0 {
                continue;
            }
            let next = cumulative + in_bucket;
            if (next as f64) >= target {
                // Interpolate within [lower, upper) by rank.
                let upper = self.bounds.get(i).copied().unwrap_or_else(|| {
                    // Overflow bucket: clamp to the largest finite bound.
                    self.bounds.last().copied().unwrap_or(0.0)
                });
                let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let frac = ((target - cumulative as f64) / in_bucket as f64).clamp(0.0, 1.0);
                return lower + (upper - lower) * frac;
            }
            cumulative = next;
        }
        self.bounds.last().copied().unwrap_or(0.0)
    }

    /// Clear every bucket, the count, and the sum. For histograms that
    /// describe current *state* (e.g. per-leaf fill) rather than an event
    /// stream: the exporter rebuilds them from scratch on each scrape.
    /// Concurrent `observe` calls may land in either generation; state
    /// histograms are only written by the rendering thread, so in practice
    /// a scrape sees one consistent rebuild.
    pub fn reset(&self) {
        for c in self.counts.iter() {
            c.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_micro.store(0, Ordering::Relaxed);
    }

    /// Cumulative `(upper_bound, count)` pairs, ending with `(+Inf, total)`
    /// — the shape of Prometheus `_bucket` series.
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::with_capacity(self.counts.len());
        let mut cumulative = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cumulative += c.load(Ordering::Relaxed);
            let bound = self.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            out.push((bound, cumulative));
        }
        out
    }
}

/// Events-per-second over a sliding window, kept as a ring of per-second
/// slots stamped with their absolute second. Recording is two relaxed
/// atomics; slots recycle lazily, so an idle meter decays to zero without a
/// background thread.
#[derive(Debug)]
pub struct RateMeter {
    epoch: Instant,
    /// `(stamp, count)` per slot; a slot is valid for second `s` only while
    /// `stamps[s % N] == s`.
    stamps: Box<[AtomicU64]>,
    counts: Box<[AtomicU64]>,
}

/// Ring size: rates can be asked over windows up to this many seconds.
const RATE_SLOTS: u64 = 16;

impl Default for RateMeter {
    fn default() -> Self {
        Self::new()
    }
}

impl RateMeter {
    /// A meter whose window starts now.
    pub fn new() -> Self {
        RateMeter {
            epoch: Instant::now(),
            stamps: (0..RATE_SLOTS).map(|_| AtomicU64::new(u64::MAX)).collect(),
            counts: (0..RATE_SLOTS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn second(&self) -> u64 {
        self.epoch.elapsed().as_secs()
    }

    /// Record one event at the current instant.
    pub fn record(&self) {
        let sec = self.second();
        let i = (sec % RATE_SLOTS) as usize;
        let stamped = self.stamps[i].load(Ordering::Relaxed);
        if stamped != sec {
            // First event of this second in this slot: recycle it. A racing
            // recorder may double-reset; the lost handful of events is
            // acceptable for a rate estimate.
            self.stamps[i].store(sec, Ordering::Relaxed);
            self.counts[i].store(0, Ordering::Relaxed);
        }
        self.counts[i].fetch_add(1, Ordering::Relaxed);
    }

    /// Mean events/second over the last `window_s` *completed-or-current*
    /// seconds (clamped to the ring size).
    pub fn per_second(&self, window_s: u64) -> f64 {
        let window = window_s.clamp(1, RATE_SLOTS);
        let now = self.second();
        let from = now.saturating_sub(window - 1);
        let mut events = 0u64;
        for sec in from..=now {
            let i = (sec % RATE_SLOTS) as usize;
            if self.stamps[i].load(Ordering::Relaxed) == sec {
                events += self.counts[i].load(Ordering::Relaxed);
            }
        }
        // Use the elapsed fraction of the current window so early rates are
        // not diluted by seconds that have not happened yet.
        let elapsed = (self.epoch.elapsed().as_secs_f64() - from as f64).max(1e-3);
        events as f64 / elapsed.min(window as f64)
    }
}

/// One registered metric.
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Entry {
    name: String,
    help: String,
    metric: Metric,
}

/// A set of named metrics rendered together as Prometheus text.
///
/// Metrics are registered once at startup (each registration hands back an
/// `Arc` the hot path updates) and rendered on demand; registration order is
/// render order.
#[derive(Default)]
pub struct Registry {
    entries: Vec<Entry>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, name: &str, help: &str, metric: Metric) {
        debug_assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "invalid Prometheus metric name: {name}"
        );
        self.entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            metric,
        });
    }

    /// Register a counter, returning the shared handle.
    pub fn counter(&mut self, name: &str, help: &str) -> Arc<Counter> {
        let c = Arc::new(Counter::new());
        self.push(name, help, Metric::Counter(Arc::clone(&c)));
        c
    }

    /// Register a gauge, returning the shared handle.
    pub fn gauge(&mut self, name: &str, help: &str) -> Arc<Gauge> {
        let g = Arc::new(Gauge::new());
        self.push(name, help, Metric::Gauge(Arc::clone(&g)));
        g
    }

    /// Register a histogram, returning the shared handle.
    pub fn histogram(&mut self, name: &str, help: &str, h: Histogram) -> Arc<Histogram> {
        let h = Arc::new(h);
        self.push(name, help, Metric::Histogram(Arc::clone(&h)));
        h
    }

    /// Render every metric in the Prometheus text exposition format.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for e in &self.entries {
            let _ = writeln!(out, "# HELP {} {}", e.name, e.help);
            match &e.metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "# TYPE {} counter", e.name);
                    let _ = writeln!(out, "{} {}", e.name, c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "# TYPE {} gauge", e.name);
                    let _ = writeln!(out, "{} {}", e.name, fmt_f64(g.get()));
                }
                Metric::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {} histogram", e.name);
                    for (bound, cumulative) in h.cumulative_buckets() {
                        let le = if bound.is_finite() {
                            fmt_f64(bound)
                        } else {
                            "+Inf".to_string()
                        };
                        let _ = writeln!(out, "{}_bucket{{le=\"{}\"}} {}", e.name, le, cumulative);
                    }
                    let _ = writeln!(out, "{}_sum {}", e.name, fmt_f64(h.sum()));
                    let _ = writeln!(out, "{}_count {}", e.name, h.count());
                }
            }
        }
        out
    }
}

/// Prometheus float formatting: plain decimal, no exponent for the common
/// magnitudes, `0` for zero.
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
        g.set(-1.0);
        assert_eq!(g.get(), -1.0);
    }

    #[test]
    fn counters_are_thread_safe() {
        let c = Arc::new(Counter::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 4000);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new(&[1.0, 2.0, 4.0, 8.0]);
        for v in [0.5, 1.5, 1.5, 3.0, 6.0, 100.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert!((h.sum() - 112.5).abs() < 1e-3);
        let buckets = h.cumulative_buckets();
        assert_eq!(buckets.len(), 5);
        assert_eq!(buckets[0], (1.0, 1));
        assert_eq!(buckets[1], (2.0, 3));
        assert_eq!(buckets[2], (4.0, 4));
        assert_eq!(buckets[3], (8.0, 5));
        assert_eq!(buckets[4].1, 6);
        assert!(buckets[4].0.is_infinite());
        // Median falls in the (1, 2] bucket; p99 clamps to the last bound.
        let p50 = h.quantile(0.5);
        assert!((1.0..=2.0).contains(&p50), "{p50}");
        assert_eq!(h.quantile(1.0), 8.0);
        assert_eq!(Histogram::new(&[1.0]).quantile(0.5), 0.0, "empty -> 0");
    }

    #[test]
    fn reset_clears_buckets_count_and_sum() {
        let h = Histogram::new(&[1.0, 2.0]);
        h.observe(0.5);
        h.observe(5.0);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0.0);
        assert!(h.cumulative_buckets().iter().all(|&(_, c)| c == 0));
        // The histogram is reusable after a reset.
        h.observe(1.5);
        assert_eq!(h.count(), 1);
        assert_eq!(h.cumulative_buckets()[1], (2.0, 1));
    }

    #[test]
    fn exponential_bounds_grow() {
        let h = Histogram::exponential(1e-3, 2.0, 4);
        let bounds: Vec<f64> = h.cumulative_buckets().iter().map(|b| b.0).collect();
        assert_eq!(&bounds[..4], &[1e-3, 2e-3, 4e-3, 8e-3]);
        assert!(bounds[4].is_infinite());
    }

    #[test]
    fn rate_meter_counts_current_second() {
        let m = RateMeter::new();
        for _ in 0..50 {
            m.record();
        }
        // All 50 events landed within the current (partial) second; the
        // rate over any window must see them.
        assert!(m.per_second(1) >= 50.0, "{}", m.per_second(1));
        assert!(m.per_second(10) >= 50.0 / 10.0);
    }

    #[test]
    fn registry_renders_prometheus_text() {
        let mut reg = Registry::new();
        let c = reg.counter("coconut_queries_total", "Total queries answered.");
        let g = reg.gauge("coconut_runs", "Live LSM runs.");
        let h = reg.histogram(
            "coconut_query_latency_seconds",
            "Query latency.",
            Histogram::new(&[0.001, 0.01]),
        );
        c.add(3);
        g.set(2.0);
        h.observe(0.0005);
        h.observe(0.5);
        let text = reg.render();
        assert!(text.contains("# HELP coconut_queries_total Total queries answered."));
        assert!(text.contains("# TYPE coconut_queries_total counter"));
        assert!(text.contains("coconut_queries_total 3"));
        assert!(text.contains("# TYPE coconut_runs gauge"));
        assert!(text.contains("coconut_runs 2"));
        assert!(text.contains("# TYPE coconut_query_latency_seconds histogram"));
        assert!(text.contains("coconut_query_latency_seconds_bucket{le=\"0.001\"} 1"));
        assert!(text.contains("coconut_query_latency_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("coconut_query_latency_seconds_count 2"));
        // Every non-comment line is `name{labels} value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.split_once(' ').expect("name value");
            assert!(!name.is_empty());
            let bare = name.split('{').next().unwrap();
            assert!(bare
                .chars()
                .all(|ch| ch.is_ascii_alphanumeric() || ch == '_'));
            assert!(value.parse::<f64>().is_ok(), "{line}");
        }
    }
}
