//! Fixed-size page access on top of [`CountedFile`].
//!
//! Index files are laid out in pages (default 8 KiB — the disk block `B` of
//! the paper's cost model). A [`PageFile`] provides page-granular reads and
//! writes; partial trailing pages are zero-padded.

use std::sync::Arc;

use crate::error::{Error, Result};
use crate::file::CountedFile;

/// Default page size used across the workspace (8 KiB).
pub const DEFAULT_PAGE_SIZE: usize = 8192;

/// A page-granular view of a [`CountedFile`].
#[derive(Debug)]
pub struct PageFile {
    file: Arc<CountedFile>,
    page_size: usize,
}

impl PageFile {
    /// Wrap `file` with pages of `page_size` bytes.
    pub fn new(file: Arc<CountedFile>, page_size: usize) -> Result<Self> {
        if page_size == 0 {
            return Err(Error::invalid("page size must be positive"));
        }
        Ok(PageFile { file, page_size })
    }

    /// The page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// The underlying counted file.
    pub fn file(&self) -> &Arc<CountedFile> {
        &self.file
    }

    /// Number of pages (the last may be partial on disk but reads padded).
    pub fn num_pages(&self) -> u64 {
        self.file.len().div_ceil(self.page_size as u64)
    }

    /// Read page `page_no` into `buf` (`buf.len()` must equal the page size);
    /// the portion past end-of-file is zero-filled.
    pub fn read_page(&self, page_no: u64, buf: &mut [u8]) -> Result<()> {
        if buf.len() != self.page_size {
            return Err(Error::invalid("buffer size != page size"));
        }
        let offset = page_no * self.page_size as u64;
        let len = self.file.len();
        if offset >= len {
            return Err(Error::invalid(format!(
                "page {page_no} out of range ({} pages)",
                self.num_pages()
            )));
        }
        let avail = ((len - offset) as usize).min(self.page_size);
        self.file.read_exact_at(&mut buf[..avail], offset)?;
        buf[avail..].fill(0);
        Ok(())
    }

    /// Write a full page at `page_no`.
    pub fn write_page(&self, page_no: u64, buf: &[u8]) -> Result<()> {
        if buf.len() != self.page_size {
            return Err(Error::invalid("buffer size != page size"));
        }
        self.file.write_all_at(buf, page_no * self.page_size as u64)
    }

    /// Append a full page at the end; returns its page number.
    pub fn append_page(&self, buf: &[u8]) -> Result<u64> {
        if buf.len() != self.page_size {
            return Err(Error::invalid("buffer size != page size"));
        }
        // Round the current length up so appended pages stay aligned even if
        // raw bytes were appended through the CountedFile directly.
        let pages = self.num_pages();
        self.write_page(pages, buf)?;
        Ok(pages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iostats::IoStats;
    use crate::tempdir::TempDir;

    fn pagefile(dir: &TempDir, page: usize) -> PageFile {
        let stats = Arc::new(IoStats::new());
        let f = CountedFile::create(dir.path().join("p.bin"), stats).unwrap();
        PageFile::new(Arc::new(f), page).unwrap()
    }

    #[test]
    fn append_read_roundtrip() {
        let dir = TempDir::new("pagefile").unwrap();
        let pf = pagefile(&dir, 64);
        let a = vec![1u8; 64];
        let b = vec![2u8; 64];
        assert_eq!(pf.append_page(&a).unwrap(), 0);
        assert_eq!(pf.append_page(&b).unwrap(), 1);
        assert_eq!(pf.num_pages(), 2);
        let mut buf = vec![0u8; 64];
        pf.read_page(1, &mut buf).unwrap();
        assert_eq!(buf, b);
        pf.read_page(0, &mut buf).unwrap();
        assert_eq!(buf, a);
    }

    #[test]
    fn partial_trailing_page_is_zero_padded() {
        let dir = TempDir::new("pagefile").unwrap();
        let stats = Arc::new(IoStats::new());
        let f = Arc::new(CountedFile::create(dir.path().join("p.bin"), stats).unwrap());
        f.append(&[7u8; 100]).unwrap();
        let pf = PageFile::new(Arc::clone(&f), 64).unwrap();
        assert_eq!(pf.num_pages(), 2);
        let mut buf = vec![0u8; 64];
        pf.read_page(1, &mut buf).unwrap();
        assert_eq!(&buf[..36], &[7u8; 36]);
        assert_eq!(&buf[36..], &[0u8; 28]);
    }

    #[test]
    fn out_of_range_and_bad_sizes_error() {
        let dir = TempDir::new("pagefile").unwrap();
        let pf = pagefile(&dir, 64);
        let mut buf = vec![0u8; 64];
        assert!(pf.read_page(0, &mut buf).is_err());
        let mut small = vec![0u8; 32];
        pf.append_page(&[0u8; 64]).unwrap();
        assert!(pf.read_page(0, &mut small).is_err());
        assert!(pf.write_page(0, &small).is_err());
        assert!(PageFile::new(Arc::clone(pf.file()), 0).is_err());
    }
}
