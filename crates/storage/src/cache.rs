//! A byte-budgeted LRU page cache (buffer pool).
//!
//! Queries over the contiguous Coconut indexes read leaf pages through this
//! cache; the budget lets experiments model "RAM much smaller than data".
//! The cache is read-through and read-only: writers bypass it (index files
//! in this workspace are written once, bottom-up, then only read).
//!
//! The implementation is a classic doubly-linked LRU over a slab, protected
//! by a single `parking_lot::Mutex`. Entries hand out `Arc<[u8]>` so a page
//! can be evicted while readers still hold it.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::Result;
use crate::pagefile::PageFile;

/// Identifies a page within a set of cached files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageKey {
    /// Caller-chosen file identifier (stable per [`PageFile`]).
    pub file_id: u32,
    /// Page number within the file.
    pub page_no: u64,
}

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Node {
    key: PageKey,
    page: Arc<[u8]>,
    prev: usize,
    next: usize,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<PageKey, usize>,
    slab: Vec<Node>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    used_bytes: u64,
    hits: u64,
    misses: u64,
}

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of lookups served from memory.
    pub hits: u64,
    /// Number of lookups that had to read from disk.
    pub misses: u64,
    /// Bytes currently resident.
    pub used_bytes: u64,
}

/// An LRU page cache bounded by a byte budget.
#[derive(Debug)]
pub struct PageCache {
    capacity_bytes: u64,
    inner: Mutex<Inner>,
}

impl PageCache {
    /// A cache that may hold up to `capacity_bytes` of pages.
    pub fn new(capacity_bytes: u64) -> Arc<Self> {
        Arc::new(PageCache {
            capacity_bytes,
            inner: Mutex::new(Inner {
                head: NIL,
                tail: NIL,
                ..Default::default()
            }),
        })
    }

    /// Fetch page `key.page_no` of `file`, reading through the cache.
    pub fn get(&self, key: PageKey, file: &PageFile) -> Result<Arc<[u8]>> {
        self.get_with(key, || {
            let mut buf = vec![0u8; file.page_size()];
            file.read_page(key.page_no, &mut buf)?;
            Ok(buf)
        })
    }

    /// Fetch `key` through the cache, calling `load` on a miss. The loader
    /// may return blocks of any size (the cache is byte-budgeted, not
    /// page-count-budgeted), which lets index leaf blocks share the pool.
    pub fn get_with(
        &self,
        key: PageKey,
        load: impl FnOnce() -> Result<Vec<u8>>,
    ) -> Result<Arc<[u8]>> {
        {
            let mut inner = self.inner.lock();
            if let Some(&idx) = inner.map.get(&key) {
                inner.hits += 1;
                Self::unlink(&mut inner, idx);
                Self::push_front(&mut inner, idx);
                return Ok(Arc::clone(&inner.slab[idx].page));
            }
            inner.misses += 1;
        }
        // Read outside the lock so concurrent misses on other pages proceed.
        let page: Arc<[u8]> = load()?.into();
        let mut inner = self.inner.lock();
        // A racing thread may have inserted the same page; keep theirs.
        if let Some(&idx) = inner.map.get(&key) {
            return Ok(Arc::clone(&inner.slab[idx].page));
        }
        self.insert_locked(&mut inner, key, Arc::clone(&page));
        Ok(page)
    }

    /// Drop one page (callers must invalidate after overwriting a cached
    /// block on disk).
    pub fn invalidate(&self, key: PageKey) {
        let mut inner = self.inner.lock();
        if let Some(idx) = inner.map.remove(&key) {
            Self::unlink(&mut inner, idx);
            inner.used_bytes -= inner.slab[idx].page.len() as u64;
            inner.slab[idx].page = Arc::from(Vec::new().into_boxed_slice());
            inner.free.push(idx);
        }
    }

    /// Drop every cached page (e.g. between experiment phases).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.map.clear();
        inner.slab.clear();
        inner.free.clear();
        inner.head = NIL;
        inner.tail = NIL;
        inner.used_bytes = 0;
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            used_bytes: inner.used_bytes,
        }
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    fn insert_locked(&self, inner: &mut Inner, key: PageKey, page: Arc<[u8]>) {
        let bytes = page.len() as u64;
        // Evict from the tail until this page fits. A page larger than the
        // whole cache is returned to the caller but never retained.
        if bytes > self.capacity_bytes {
            return;
        }
        while inner.used_bytes + bytes > self.capacity_bytes {
            let tail = inner.tail;
            debug_assert_ne!(tail, NIL, "cache accounting out of sync");
            if tail == NIL {
                break;
            }
            Self::unlink(inner, tail);
            let node_key = inner.slab[tail].key;
            inner.map.remove(&node_key);
            inner.used_bytes -= inner.slab[tail].page.len() as u64;
            inner.slab[tail].page = Arc::from(Vec::new().into_boxed_slice());
            inner.free.push(tail);
        }
        let node = Node {
            key,
            page,
            prev: NIL,
            next: NIL,
        };
        let idx = if let Some(idx) = inner.free.pop() {
            inner.slab[idx] = node;
            idx
        } else {
            inner.slab.push(node);
            inner.slab.len() - 1
        };
        inner.used_bytes += bytes;
        inner.map.insert(key, idx);
        Self::push_front(inner, idx);
    }

    fn unlink(inner: &mut Inner, idx: usize) {
        let (prev, next) = (inner.slab[idx].prev, inner.slab[idx].next);
        if prev != NIL {
            inner.slab[prev].next = next;
        } else if inner.head == idx {
            inner.head = next;
        }
        if next != NIL {
            inner.slab[next].prev = prev;
        } else if inner.tail == idx {
            inner.tail = prev;
        }
        inner.slab[idx].prev = NIL;
        inner.slab[idx].next = NIL;
    }

    fn push_front(inner: &mut Inner, idx: usize) {
        inner.slab[idx].prev = NIL;
        inner.slab[idx].next = inner.head;
        if inner.head != NIL {
            inner.slab[inner.head].prev = idx;
        }
        inner.head = idx;
        if inner.tail == NIL {
            inner.tail = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::CountedFile;
    use crate::iostats::IoStats;
    use crate::tempdir::TempDir;

    const PAGE: usize = 64;

    fn make_file(dir: &TempDir, pages: usize) -> (PageFile, Arc<IoStats>) {
        let stats = Arc::new(IoStats::new());
        let f = CountedFile::create(dir.path().join("c.bin"), Arc::clone(&stats)).unwrap();
        let pf = PageFile::new(Arc::new(f), PAGE).unwrap();
        for i in 0..pages {
            pf.append_page(&[i as u8; PAGE]).unwrap();
        }
        (pf, stats)
    }

    #[test]
    fn hit_avoids_disk() {
        let dir = TempDir::new("cache").unwrap();
        let (pf, stats) = make_file(&dir, 4);
        let reads_after_build = stats.snapshot().bytes_read;
        let cache = PageCache::new((PAGE * 2) as u64);
        let k = PageKey {
            file_id: 0,
            page_no: 1,
        };
        let p1 = cache.get(k, &pf).unwrap();
        let p2 = cache.get(k, &pf).unwrap();
        assert_eq!(p1[0], 1);
        assert!(Arc::ptr_eq(&p1, &p2));
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(stats.snapshot().bytes_read - reads_after_build, PAGE as u64);
    }

    #[test]
    fn evicts_lru_not_mru() {
        let dir = TempDir::new("cache").unwrap();
        let (pf, _) = make_file(&dir, 4);
        let cache = PageCache::new((PAGE * 2) as u64);
        let k = |p| PageKey {
            file_id: 0,
            page_no: p,
        };
        cache.get(k(0), &pf).unwrap();
        cache.get(k(1), &pf).unwrap();
        cache.get(k(0), &pf).unwrap(); // page 0 now MRU
        cache.get(k(2), &pf).unwrap(); // evicts page 1 (LRU)
        assert_eq!(cache.stats().misses, 3);
        cache.get(k(0), &pf).unwrap(); // still resident
        assert_eq!(cache.stats().hits, 2);
        cache.get(k(1), &pf).unwrap(); // was evicted -> miss
        assert_eq!(cache.stats().misses, 4);
    }

    #[test]
    fn page_larger_than_cache_is_served_not_cached() {
        let dir = TempDir::new("cache").unwrap();
        let (pf, _) = make_file(&dir, 1);
        let cache = PageCache::new(10);
        let k = PageKey {
            file_id: 0,
            page_no: 0,
        };
        let p = cache.get(k, &pf).unwrap();
        assert_eq!(p.len(), PAGE);
        assert_eq!(cache.stats().used_bytes, 0);
    }

    #[test]
    fn clear_resets_contents() {
        let dir = TempDir::new("cache").unwrap();
        let (pf, _) = make_file(&dir, 2);
        let cache = PageCache::new((PAGE * 2) as u64);
        let k = PageKey {
            file_id: 0,
            page_no: 0,
        };
        cache.get(k, &pf).unwrap();
        cache.clear();
        assert_eq!(cache.stats().used_bytes, 0);
        cache.get(k, &pf).unwrap();
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn distinct_file_ids_do_not_collide() {
        let dir = TempDir::new("cache").unwrap();
        let (pf, _) = make_file(&dir, 2);
        let cache = PageCache::new((PAGE * 4) as u64);
        cache
            .get(
                PageKey {
                    file_id: 1,
                    page_no: 0,
                },
                &pf,
            )
            .unwrap();
        cache
            .get(
                PageKey {
                    file_id: 2,
                    page_no: 0,
                },
                &pf,
            )
            .unwrap();
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.stats().used_bytes, (PAGE * 2) as u64);
    }

    #[test]
    fn get_with_custom_loader_and_invalidate() {
        let cache = PageCache::new(1024);
        let k = PageKey {
            file_id: 9,
            page_no: 0,
        };
        let loaded = std::sync::atomic::AtomicU32::new(0);
        let load = || {
            loaded.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            Ok(vec![7u8; 100])
        };
        let a = cache.get_with(k, load).unwrap();
        assert_eq!(a.len(), 100);
        let b = cache.get_with(k, || panic!("must be cached")).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(loaded.load(std::sync::atomic::Ordering::Relaxed), 1);

        cache.invalidate(k);
        assert_eq!(cache.stats().used_bytes, 0);
        let c = cache.get_with(k, || Ok(vec![8u8; 100])).unwrap();
        assert_eq!(c[0], 8);
    }

    #[test]
    fn invalidate_missing_key_is_noop() {
        let cache = PageCache::new(1024);
        cache.invalidate(PageKey {
            file_id: 1,
            page_no: 99,
        });
        assert_eq!(cache.stats().used_bytes, 0);
    }

    #[test]
    fn many_pages_stress_slab_reuse() {
        let dir = TempDir::new("cache").unwrap();
        let (pf, _) = make_file(&dir, 64);
        let cache = PageCache::new((PAGE * 4) as u64);
        for round in 0..3 {
            for p in 0..64 {
                let page = cache
                    .get(
                        PageKey {
                            file_id: 0,
                            page_no: p,
                        },
                        &pf,
                    )
                    .unwrap();
                assert_eq!(page[0], p as u8, "round {round}");
            }
        }
        assert!(cache.stats().used_bytes <= (PAGE * 4) as u64);
    }
}
