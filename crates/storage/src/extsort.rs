//! External sorting of fixed-size binary records under a memory budget.
//!
//! This is the engine behind every bottom-up bulk load in the workspace
//! (Section 3.1 of the paper): the *partitioning* phase fills a buffer of at
//! most `budget` bytes, sorts it in memory and flushes it as a sorted run
//! with large sequential writes; the *merging* phase merge-sorts the runs
//! with one input buffer per run. When everything fits in memory no run is
//! ever written (the common case for non-materialized Coconut indexes, where
//! only summarizations are sorted — "sorting in the non-materialized versions
//! is really fast, since only the summarizations need to be sorted").
//!
//! Records are serialized through a [`Codec`], so the same sorter handles
//! 24-byte `(zkey, position)` pairs and multi-kilobyte
//! `(zkey, raw series)` records (the materialized `-Full` variants).
//!
//! If the number of runs exceeds the merge fan-in that the budget allows,
//! intermediate merge passes are performed (the paper notes a single pass
//! suffices whenever `M > sqrt(N)`; we handle the general case anyway).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::error::{Error, Result};
use crate::file::CountedFile;
use crate::iostats::IoStats;

/// Serialize/deserialize fixed-size records.
pub trait Codec {
    /// The in-memory record type.
    type Item;

    /// The on-disk size of one record, in bytes (constant per codec instance).
    fn record_size(&self) -> usize;

    /// Encode `item` into `buf` (`buf.len() == record_size()`).
    fn encode(&self, item: &Self::Item, buf: &mut [u8]);

    /// Decode a record from `buf` (`buf.len() == record_size()`).
    fn decode(&self, buf: &[u8]) -> Self::Item;
}

/// How the sorter behaved — reported by experiments alongside I/O stats.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SortReport {
    /// Total records sorted.
    pub items: u64,
    /// Sorted runs spilled to disk (0 means fully in-memory).
    pub runs: u64,
    /// Merge passes over the data (0 when in-memory or single run).
    pub merge_passes: u64,
}

static SORT_ID: AtomicU64 = AtomicU64::new(0);

/// A set of spilled run files, deleted from disk when dropped. Ownership
/// moves from the sorter to the merge stream on a successful `finish`, so
/// whichever side holds the files last cleans them up — a build that errors
/// (or is dropped) between `spill_run` and `finish` leaks nothing.
#[derive(Debug, Default)]
struct RunFiles(Vec<PathBuf>);

impl Drop for RunFiles {
    fn drop(&mut self) {
        for p in &self.0 {
            let _ = std::fs::remove_file(p);
        }
    }
}

/// Streaming external sorter. `push` records, then `finish` to obtain the
/// globally sorted stream.
pub struct ExternalSorter<C: Codec> {
    codec: C,
    budget_bytes: usize,
    tmp_dir: PathBuf,
    stats: Arc<IoStats>,
    buffer: Vec<C::Item>,
    buffer_capacity: usize,
    runs: RunFiles,
    report: SortReport,
    sort_id: u64,
    io_buf_bytes: usize,
}

impl<C: Codec> ExternalSorter<C>
where
    C::Item: Ord,
{
    /// A sorter that holds at most `budget_bytes` of records in memory and
    /// spills runs into `tmp_dir`.
    ///
    /// **Budget invariant:** `budget_bytes` is *per sorter*, not global.
    /// A caller that runs K sorters concurrently (e.g. the sharded build in
    /// `coconut-core`) must divide its memory budget across them — K
    /// sorters created with the full budget would claim K times the
    /// intended memory.
    pub fn new(
        codec: C,
        budget_bytes: u64,
        tmp_dir: impl Into<PathBuf>,
        stats: Arc<IoStats>,
    ) -> Result<Self> {
        let record = codec.record_size();
        if record == 0 {
            return Err(Error::invalid("record size must be positive"));
        }
        // Always keep room for at least a handful of records: a budget below
        // one record would otherwise dead-lock the partitioning phase.
        let buffer_capacity = ((budget_bytes as usize) / record).max(4);
        Ok(ExternalSorter {
            codec,
            budget_bytes: budget_bytes as usize,
            tmp_dir: tmp_dir.into(),
            stats,
            buffer: Vec::new(),
            buffer_capacity,
            runs: RunFiles::default(),
            report: SortReport::default(),
            sort_id: SORT_ID.fetch_add(1, Ordering::Relaxed),
            io_buf_bytes: 256 * 1024,
        })
    }

    /// Add one record.
    pub fn push(&mut self, item: C::Item) -> Result<()> {
        if self.buffer.len() >= self.buffer_capacity {
            self.spill_run()?;
        }
        self.buffer.push(item);
        self.report.items += 1;
        Ok(())
    }

    /// Number of records pushed so far.
    pub fn len(&self) -> u64 {
        self.report.items
    }

    /// True when nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.report.items == 0
    }

    fn run_path(&self, idx: usize) -> PathBuf {
        self.tmp_dir
            .join(format!("sort-{}-run-{idx}.bin", self.sort_id))
    }

    fn spill_run(&mut self) -> Result<()> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        // Fault hook: an injected spill failure surfaces before any file is
        // created; the `RunFiles` guard cleans up earlier runs on drop.
        crate::fault::check("extsort.spill")?;
        self.buffer.sort_unstable();
        let path = self.run_path(self.runs.0.len());
        let file = CountedFile::create(&path, Arc::clone(&self.stats))?;
        // Register the file with the drop-guard *before* writing so a
        // mid-spill I/O error (e.g. disk full) cannot leak a partial run.
        self.runs.0.push(path);
        let record = self.codec.record_size();
        let per_flush = (self.io_buf_bytes / record).max(1);
        let mut out = vec![0u8; per_flush * record];
        let mut filled = 0usize;
        for item in self.buffer.drain(..) {
            self.codec
                .encode(&item, &mut out[filled * record..(filled + 1) * record]);
            filled += 1;
            if filled == per_flush {
                file.append(&out[..filled * record])?;
                filled = 0;
            }
        }
        if filled > 0 {
            file.append(&out[..filled * record])?;
        }
        file.sync()?;
        self.report.runs += 1;
        Ok(())
    }

    /// Finish pushing and return the globally sorted stream.
    pub fn finish(mut self) -> Result<SortedStream<C>> {
        if self.runs.0.is_empty() {
            // Fully in-memory: one sort, no I/O at all.
            self.buffer.sort_unstable();
            let items = std::mem::take(&mut self.buffer);
            return Ok(SortedStream {
                codec: self.codec,
                report: self.report,
                source: StreamSource::Memory {
                    items: items.into_iter(),
                },
            });
        }
        self.spill_run()?;

        // The merge fan-in is limited by the memory budget: one read buffer
        // per run plus slack. Below the limit we merge all runs at once;
        // above it we do intermediate passes.
        let record = self.codec.record_size();
        let min_read_buf = record.max(4096);
        let max_fanin = (self.budget_bytes / min_read_buf).clamp(2, 128);
        // Every generation of run files lives inside a `RunFiles` guard, so
        // an error (or drop) at any point deletes whatever is on disk.
        let mut pass_no = 0usize;
        while self.runs.0.len() > max_fanin {
            self.report.merge_passes += 1;
            let mut next = RunFiles::default();
            for (gi, group) in self.runs.0.chunks(max_fanin).enumerate() {
                let out_path = self
                    .tmp_dir
                    .join(format!("sort-{}-pass{pass_no}-{gi}.bin", self.sort_id));
                if let Err(e) = self.merge_group(group, &out_path) {
                    let _ = std::fs::remove_file(&out_path);
                    return Err(e); // `next` and `self.runs` clean up on drop
                }
                next.0.push(out_path);
            }
            self.runs = next; // dropping the old generation deletes it
            pass_no += 1;
        }
        self.report.merge_passes += 1;
        let readers = self
            .runs
            .0
            .iter()
            .map(|p| RunReader::open(p, record, min_read_buf, Arc::clone(&self.stats)))
            .collect::<Result<Vec<_>>>()?;
        let mut merger = Merger::new(readers, &self.codec)?;
        // Prime the heap.
        merger.prime(&self.codec)?;
        // Success: run-file ownership moves into the stream, which deletes
        // them once it is dropped.
        let runs = std::mem::take(&mut self.runs);
        Ok(SortedStream {
            codec: self.codec,
            report: self.report,
            source: StreamSource::Merge {
                merger,
                run_paths: runs,
            },
        })
    }

    fn merge_group(&self, group: &[PathBuf], out_path: &PathBuf) -> Result<()> {
        let record = self.codec.record_size();
        let min_read_buf = record.max(4096);
        let readers = group
            .iter()
            .map(|p| RunReader::open(p, record, min_read_buf, Arc::clone(&self.stats)))
            .collect::<Result<Vec<_>>>()?;
        let mut merger = Merger::new(readers, &self.codec)?;
        merger.prime(&self.codec)?;
        let out = CountedFile::create(out_path, Arc::clone(&self.stats))?;
        let per_flush = (self.io_buf_bytes / record).max(1);
        let mut buf = vec![0u8; per_flush * record];
        let mut filled = 0usize;
        while let Some(item) = merger.next_item(&self.codec)? {
            self.codec
                .encode(&item, &mut buf[filled * record..(filled + 1) * record]);
            filled += 1;
            if filled == per_flush {
                out.append(&buf[..filled * record])?;
                filled = 0;
            }
        }
        if filled > 0 {
            out.append(&buf[..filled * record])?;
        }
        out.sync()?;
        Ok(())
    }
}

/// A buffered sequential reader over one sorted run.
struct RunReader {
    file: CountedFile,
    record: usize,
    buf: Vec<u8>,
    buf_valid: usize,
    buf_pos: usize,
    file_pos: u64,
    file_len: u64,
}

impl RunReader {
    fn open(path: &PathBuf, record: usize, buf_bytes: usize, stats: Arc<IoStats>) -> Result<Self> {
        let file = CountedFile::open(path, stats)?;
        let file_len = file.len();
        if file_len % record as u64 != 0 {
            return Err(Error::corrupt(format!(
                "run file {} length {} not a multiple of record size {}",
                path.display(),
                file_len,
                record
            )));
        }
        let records_per_buf = (buf_bytes / record).max(1);
        Ok(RunReader {
            file,
            record,
            buf: vec![0u8; records_per_buf * record],
            buf_valid: 0,
            buf_pos: 0,
            file_pos: 0,
            file_len,
        })
    }

    /// Borrow the bytes of the next record, or `None` at end of run.
    fn next_record(&mut self) -> Result<Option<&[u8]>> {
        if self.buf_pos == self.buf_valid {
            let remaining = (self.file_len - self.file_pos) as usize;
            if remaining == 0 {
                return Ok(None);
            }
            let to_read = remaining.min(self.buf.len());
            self.file
                .read_exact_at(&mut self.buf[..to_read], self.file_pos)?;
            self.file_pos += to_read as u64;
            self.buf_valid = to_read;
            self.buf_pos = 0;
        }
        let start = self.buf_pos;
        self.buf_pos += self.record;
        Ok(Some(&self.buf[start..start + self.record]))
    }
}

/// Heap entry ordered so that `BinaryHeap` (a max-heap) pops the smallest.
struct HeapEntry<T> {
    item: Reverse<T>,
    source: usize,
}

impl<T: Ord> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.item == other.item
    }
}
impl<T: Ord> Eq for HeapEntry<T> {}
impl<T: Ord> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T: Ord> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.item.cmp(&other.item)
    }
}

struct Merger<T> {
    readers: Vec<RunReader>,
    heap: BinaryHeap<HeapEntry<T>>,
    primed: bool,
}

impl<T: Ord> Merger<T> {
    fn new<C: Codec<Item = T>>(readers: Vec<RunReader>, _codec: &C) -> Result<Self> {
        Ok(Merger {
            readers,
            heap: BinaryHeap::new(),
            primed: false,
        })
    }

    fn prime<C: Codec<Item = T>>(&mut self, codec: &C) -> Result<()> {
        if self.primed {
            return Ok(());
        }
        for i in 0..self.readers.len() {
            if let Some(bytes) = self.readers[i].next_record()? {
                let item = codec.decode(bytes);
                self.heap.push(HeapEntry {
                    item: Reverse(item),
                    source: i,
                });
            }
        }
        self.primed = true;
        Ok(())
    }

    fn next_item<C: Codec<Item = T>>(&mut self, codec: &C) -> Result<Option<T>> {
        let Some(HeapEntry {
            item: Reverse(item),
            source,
        }) = self.heap.pop()
        else {
            return Ok(None);
        };
        if let Some(bytes) = self.readers[source].next_record()? {
            let next = codec.decode(bytes);
            self.heap.push(HeapEntry {
                item: Reverse(next),
                source,
            });
        }
        Ok(Some(item))
    }
}

enum StreamSource<C: Codec> {
    Memory {
        items: std::vec::IntoIter<C::Item>,
    },
    Merge {
        merger: Merger<C::Item>,
        /// Owned so the run files are deleted when the stream is dropped.
        #[allow(dead_code)]
        run_paths: RunFiles,
    },
}

/// The output of [`ExternalSorter::finish`]: records in globally sorted order.
pub struct SortedStream<C: Codec> {
    codec: C,
    report: SortReport,
    source: StreamSource<C>,
}

impl<C: Codec> SortedStream<C>
where
    C::Item: Ord,
{
    /// The next record, or `None` when exhausted.
    pub fn next_item(&mut self) -> Result<Option<C::Item>> {
        match &mut self.source {
            StreamSource::Memory { items } => Ok(items.next()),
            StreamSource::Merge { merger, .. } => merger.next_item(&self.codec),
        }
    }

    /// How the sort behaved (runs, passes).
    pub fn report(&self) -> SortReport {
        self.report
    }

    /// Drain the stream into a vector (convenience for tests and small sorts).
    pub fn collect_all(mut self) -> Result<Vec<C::Item>> {
        let mut out = Vec::new();
        while let Some(item) = self.next_item()? {
            out.push(item);
        }
        Ok(out)
    }
}

/// A stream of records in globally non-decreasing order, with a sort
/// report. Implemented by [`SortedStream`] (one sorter's output) and
/// [`MergedStream`] (K sorters' outputs merged) so bulk loaders can consume
/// either through one interface.
pub trait RecordStream {
    /// The record type.
    type Item;

    /// The next record, or `None` when exhausted.
    fn next_item(&mut self) -> Result<Option<Self::Item>>;

    /// How the underlying sort(s) behaved.
    fn report(&self) -> SortReport;
}

impl<C: Codec> RecordStream for SortedStream<C>
where
    C::Item: Ord,
{
    type Item = C::Item;

    fn next_item(&mut self) -> Result<Option<C::Item>> {
        SortedStream::next_item(self)
    }

    fn report(&self) -> SortReport {
        SortedStream::report(self)
    }
}

/// A K-way merge over already-sorted [`RecordStream`]s: a small binary heap
/// (one entry per stream, the same loser-selection the run merger uses)
/// yields the globally sorted order. Because record ordering is total
/// (`(key, pos)` is unique), the merged order is *identical* to what one
/// big sort of all inputs would produce — the property that makes sharded
/// builds bit-identical to single-sorter builds, and LSM compactions
/// bit-identical to a from-scratch bulk load.
///
/// The inputs are any [`RecordStream`]s with `Ord` items: per-shard
/// [`SortedStream`]s during construction, or the leaf-order entry streams
/// of existing index runs during an LSM compaction.
pub struct MergedStream<S: RecordStream> {
    streams: Vec<S>,
    heap: BinaryHeap<HeapEntry<S::Item>>,
    report: SortReport,
}

impl<S: RecordStream> MergedStream<S>
where
    S::Item: Ord,
{
    /// Merge `streams`; the aggregate report sums items and spilled runs
    /// across shards and takes the worst shard's merge-pass count.
    pub fn new(streams: Vec<S>) -> Result<Self> {
        let mut report = SortReport::default();
        for s in &streams {
            let r = s.report();
            report.items += r.items;
            report.runs += r.runs;
            report.merge_passes = report.merge_passes.max(r.merge_passes);
        }
        let mut merged = MergedStream {
            streams,
            heap: BinaryHeap::new(),
            report,
        };
        for i in 0..merged.streams.len() {
            if let Some(item) = merged.streams[i].next_item()? {
                merged.heap.push(HeapEntry {
                    item: Reverse(item),
                    source: i,
                });
            }
        }
        Ok(merged)
    }

    /// The next record in global order, or `None` when all streams are dry.
    pub fn next_item(&mut self) -> Result<Option<S::Item>> {
        let Some(HeapEntry {
            item: Reverse(item),
            source,
        }) = self.heap.pop()
        else {
            return Ok(None);
        };
        if let Some(next) = self.streams[source].next_item()? {
            self.heap.push(HeapEntry {
                item: Reverse(next),
                source,
            });
        }
        Ok(Some(item))
    }

    /// The aggregated sort report.
    pub fn report(&self) -> SortReport {
        self.report
    }

    /// Drain into a vector (tests and small merges).
    pub fn collect_all(mut self) -> Result<Vec<S::Item>> {
        let mut out = Vec::new();
        while let Some(item) = self.next_item()? {
            out.push(item);
        }
        Ok(out)
    }
}

impl<S: RecordStream> RecordStream for MergedStream<S>
where
    S::Item: Ord,
{
    type Item = S::Item;

    fn next_item(&mut self) -> Result<Option<S::Item>> {
        MergedStream::next_item(self)
    }

    fn report(&self) -> SortReport {
        MergedStream::report(self)
    }
}

/// A ready-made codec for `u64` records (used in tests and simple id sorts).
#[derive(Debug, Clone, Copy, Default)]
pub struct U64Codec;

impl Codec for U64Codec {
    type Item = u64;
    fn record_size(&self) -> usize {
        8
    }
    fn encode(&self, item: &u64, buf: &mut [u8]) {
        buf.copy_from_slice(&item.to_le_bytes());
    }
    fn decode(&self, buf: &[u8]) -> u64 {
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(buf);
        u64::from_le_bytes(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;

    fn sort_values(values: Vec<u64>, budget: u64) -> (Vec<u64>, SortReport) {
        let dir = TempDir::new("extsort").unwrap();
        let stats = Arc::new(IoStats::new());
        let mut sorter = ExternalSorter::new(U64Codec, budget, dir.path(), stats).unwrap();
        for v in values {
            sorter.push(v).unwrap();
        }
        let stream = sorter.finish().unwrap();
        let report = stream.report();
        (stream.collect_all().unwrap(), report)
    }

    #[test]
    fn in_memory_when_budget_suffices() {
        let values: Vec<u64> = (0..1000).rev().collect();
        let (sorted, report) = sort_values(values, 1 << 20);
        assert_eq!(sorted, (0..1000).collect::<Vec<_>>());
        assert_eq!(report.runs, 0);
        assert_eq!(report.merge_passes, 0);
    }

    #[test]
    fn spills_and_merges_with_tiny_budget() {
        let values: Vec<u64> = (0..10_000)
            .map(|i| (i * 2_654_435_761u64) % 100_000)
            .collect();
        let mut expected = values.clone();
        expected.sort_unstable();
        let (sorted, report) = sort_values(values, 256); // 32 records per run
        assert_eq!(sorted, expected);
        assert!(report.runs > 10, "expected many runs, got {}", report.runs);
        assert!(report.merge_passes >= 1);
    }

    #[test]
    fn budget_smaller_than_one_record_still_works() {
        let values: Vec<u64> = (0..100).rev().collect();
        let (sorted, report) = sort_values(values, 1);
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert!(report.runs >= 2);
    }

    #[test]
    fn empty_input() {
        let (sorted, report) = sort_values(Vec::new(), 1024);
        assert!(sorted.is_empty());
        assert_eq!(report.items, 0);
    }

    #[test]
    fn duplicates_survive() {
        let values = vec![5u64, 5, 5, 1, 1, 9];
        let (sorted, _) = sort_values(values, 16); // force spills
        assert_eq!(sorted, vec![1, 1, 5, 5, 5, 9]);
    }

    #[test]
    fn sorted_input_stays_sorted() {
        let values: Vec<u64> = (0..5000).collect();
        let (sorted, _) = sort_values(values.clone(), 128);
        assert_eq!(sorted, values);
    }

    #[test]
    fn multi_pass_merge_when_fanin_exceeded() {
        // budget 8 KiB, min read buf 4 KiB -> max_fanin = 2, so >2 runs
        // forces intermediate passes.
        let values: Vec<u64> = (0..40_000).rev().collect();
        let dir = TempDir::new("extsort").unwrap();
        let stats = Arc::new(IoStats::new());
        let mut sorter = ExternalSorter::new(U64Codec, 8192, dir.path(), stats).unwrap();
        for v in values {
            sorter.push(v).unwrap();
        }
        let stream = sorter.finish().unwrap();
        assert!(stream.report().runs > 2);
        assert!(
            stream.report().merge_passes >= 2,
            "passes: {}",
            stream.report().merge_passes
        );
        let sorted = stream.collect_all().unwrap();
        assert_eq!(sorted, (0..40_000).collect::<Vec<_>>());
    }

    fn run_files_in(dir: &TempDir) -> Vec<std::path::PathBuf> {
        std::fs::read_dir(dir.path())
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect()
    }

    #[test]
    fn dropped_sorter_leaves_no_run_files() {
        // A build that errors between `spill_run` and `finish` drops the
        // sorter with spilled runs on disk; they must be cleaned up.
        let dir = TempDir::new("extsort-drop").unwrap();
        let stats = Arc::new(IoStats::new());
        let mut sorter = ExternalSorter::new(U64Codec, 64, dir.path(), stats).unwrap();
        for v in (0..1000u64).rev() {
            sorter.push(v).unwrap();
        }
        assert!(
            !run_files_in(&dir).is_empty(),
            "test needs spilled runs on disk"
        );
        drop(sorter);
        assert_eq!(run_files_in(&dir), Vec::<std::path::PathBuf>::new());
    }

    #[test]
    fn finished_stream_cleans_runs_on_drop() {
        let dir = TempDir::new("extsort-drop2").unwrap();
        let stats = Arc::new(IoStats::new());
        let mut sorter = ExternalSorter::new(U64Codec, 64, dir.path(), stats).unwrap();
        for v in (0..1000u64).rev() {
            sorter.push(v).unwrap();
        }
        let mut stream = sorter.finish().unwrap();
        assert!(stream.report().runs > 1);
        // Partially consumed, then dropped.
        assert_eq!(stream.next_item().unwrap(), Some(0));
        drop(stream);
        assert_eq!(run_files_in(&dir), Vec::<std::path::PathBuf>::new());
    }

    #[test]
    fn merged_stream_equals_one_big_sort() {
        let dir = TempDir::new("extsort-merge").unwrap();
        let stats = Arc::new(IoStats::new());
        let values: Vec<u64> = (0..9_000).map(|i| (i * 2_654_435_761u64) % 7000).collect();
        // Three shards with different budgets (one stays in memory, two
        // spill), merged.
        let mut streams = Vec::new();
        for (shard, budget) in [(0u64, 1u64 << 20), (1, 128), (2, 256)] {
            let sub = dir.path().join(format!("shard-{shard}"));
            std::fs::create_dir_all(&sub).unwrap();
            let mut sorter =
                ExternalSorter::new(U64Codec, budget, &sub, Arc::clone(&stats)).unwrap();
            for &v in values.iter().skip(shard as usize).step_by(3) {
                sorter.push(v).unwrap();
            }
            streams.push(sorter.finish().unwrap());
        }
        let merged = MergedStream::new(streams).unwrap();
        assert_eq!(merged.report().items, values.len() as u64);
        assert!(merged.report().runs > 1);
        let got = merged.collect_all().unwrap();
        let mut expected = values;
        expected.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn merged_stream_of_one_is_identity() {
        let dir = TempDir::new("extsort-merge1").unwrap();
        let stats = Arc::new(IoStats::new());
        let mut sorter = ExternalSorter::new(U64Codec, 1 << 20, dir.path(), stats).unwrap();
        for v in [5u64, 3, 9, 1] {
            sorter.push(v).unwrap();
        }
        let merged = MergedStream::new(vec![sorter.finish().unwrap()]).unwrap();
        assert_eq!(merged.collect_all().unwrap(), vec![1, 3, 5, 9]);
    }

    #[test]
    fn merged_stream_of_none_is_empty() {
        let merged = MergedStream::<SortedStream<U64Codec>>::new(Vec::new()).unwrap();
        assert_eq!(merged.report(), SortReport::default());
        assert!(merged.collect_all().unwrap().is_empty());
    }

    #[test]
    fn io_is_sequential() {
        // External sorting must be dominated by sequential I/O — that is the
        // whole point of the paper's Section 3.1 comparison. Each run costs
        // exactly one seek (its first read); everything else must stream.
        let dir = TempDir::new("extsort").unwrap();
        let stats = Arc::new(IoStats::new());
        let mut sorter =
            ExternalSorter::new(U64Codec, 64 * 1024, dir.path(), Arc::clone(&stats)).unwrap();
        for v in (0..200_000u64).rev() {
            sorter.push(v).unwrap();
        }
        let stream = sorter.finish().unwrap();
        let runs = stream.report().runs;
        assert!(runs >= 2);
        let _ = stream.collect_all().unwrap();
        let snap = stats.snapshot();
        // Every random op must be accounted for by a run-file open
        // (initial runs plus the smaller set of intermediate merge outputs).
        assert!(
            snap.random_ops() <= 2 * runs,
            "random {} ops for {} runs",
            snap.random_ops(),
            runs
        );
        assert!(
            snap.random_ops() * 10 <= snap.total_ops(),
            "random {} of {} total ops",
            snap.random_ops(),
            snap.total_ops()
        );
    }
}
