//! The error type shared across the Coconut workspace.
//!
//! Each crate in the workspace re-exports this type; it is deliberately kept
//! small so that it stays meaningful at every layer.

use std::fmt;

/// Errors produced by the storage layer and the crates built on top of it.
#[derive(Debug)]
pub enum Error {
    /// An underlying I/O error from the operating system.
    Io(std::io::Error),
    /// A file existed but its contents were not what the format requires
    /// (bad magic, truncated payload, inconsistent header fields, ...).
    Corrupt(String),
    /// A caller supplied an argument outside the supported range
    /// (zero-length series, budget too small to hold a single record, ...).
    InvalidArg(String),
    /// A cooperative deadline expired before the operation finished. Raised
    /// at the query path's early-abandon checkpoints (see
    /// [`crate::deadline::Deadline`]); the partial work is discarded.
    Deadline(String),
    /// A remote peer (shard worker) could not be reached within the retry
    /// budget, or dropped the connection mid-request. Distinguished from
    /// [`Error::Io`] so a coordinator can surface "that shard is down" as a
    /// typed, retriable condition rather than a generic I/O failure.
    Unavailable(String),
}

/// Convenient alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, Error>;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "I/O error: {e}"),
            Error::Corrupt(msg) => write!(f, "corrupt data: {msg}"),
            Error::InvalidArg(msg) => write!(f, "invalid argument: {msg}"),
            Error::Deadline(msg) => write!(f, "deadline exceeded: {msg}"),
            Error::Unavailable(msg) => write!(f, "peer unavailable: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl Error {
    /// Build an [`Error::Corrupt`] from anything printable.
    pub fn corrupt(msg: impl fmt::Display) -> Self {
        Error::Corrupt(msg.to_string())
    }

    /// Build an [`Error::InvalidArg`] from anything printable.
    pub fn invalid(msg: impl fmt::Display) -> Self {
        Error::InvalidArg(msg.to_string())
    }

    /// Build an [`Error::Deadline`] from anything printable.
    pub fn deadline(msg: impl fmt::Display) -> Self {
        Error::Deadline(msg.to_string())
    }

    /// True when this error is an expired [`Error::Deadline`] — servers map
    /// it to a per-request timeout response rather than a failure.
    pub fn is_deadline(&self) -> bool {
        matches!(self, Error::Deadline(_))
    }

    /// Build an [`Error::Unavailable`] from anything printable.
    pub fn unavailable(msg: impl fmt::Display) -> Self {
        Error::Unavailable(msg.to_string())
    }

    /// True when this error is an [`Error::Unavailable`] — a coordinator
    /// maps it to a typed per-shard outage instead of a query failure.
    pub fn is_unavailable(&self) -> bool {
        matches!(self, Error::Unavailable(_))
    }

    /// True when this error is an [`Error::Corrupt`] — detected damage to
    /// on-disk state, the trigger for run quarantine.
    pub fn is_corrupt(&self) -> bool {
        matches!(self, Error::Corrupt(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = Error::corrupt("bad magic");
        assert!(e.to_string().contains("bad magic"));
        let e = Error::invalid("zero length");
        assert!(e.to_string().contains("zero length"));
    }

    #[test]
    fn io_error_is_wrapped_and_sourced() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: Error = io.into();
        assert!(e.to_string().contains("nope"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
