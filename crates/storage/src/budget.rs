//! An explicit, shareable memory budget.
//!
//! The paper's central experimental knob is the ratio between main memory and
//! data size (Figures 8a/8b sweep it; 8d/8e/10 hold it fixed while data
//! grows). [`MemoryBudget`] makes that knob explicit: components that buffer
//! data (external-sort run buffers, iSAX 2.0's FBL, page caches) reserve
//! bytes from a shared budget and release them when the buffers are flushed.
//!
//! The budget is advisory — a reservation that fails tells the caller to
//! flush, it does not make allocations fail.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A thread-safe byte budget shared between the components of one experiment.
#[derive(Debug)]
pub struct MemoryBudget {
    capacity: u64,
    used: AtomicU64,
}

impl MemoryBudget {
    /// A budget of `capacity` bytes.
    pub fn new(capacity: u64) -> Arc<Self> {
        Arc::new(MemoryBudget {
            capacity,
            used: AtomicU64::new(0),
        })
    }

    /// An effectively unlimited budget (for "ample memory" configurations).
    pub fn unlimited() -> Arc<Self> {
        Self::new(u64::MAX)
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently reserved.
    pub fn used(&self) -> u64 {
        self.used.load(Ordering::Acquire)
    }

    /// Bytes still available.
    pub fn available(&self) -> u64 {
        self.capacity.saturating_sub(self.used())
    }

    /// Try to reserve `bytes`; returns `false` (reserving nothing) if the
    /// budget would be exceeded.
    pub fn try_reserve(&self, bytes: u64) -> bool {
        let mut current = self.used.load(Ordering::Acquire);
        loop {
            let Some(next) = current.checked_add(bytes) else {
                return false;
            };
            if next > self.capacity {
                return false;
            }
            match self.used.compare_exchange_weak(
                current,
                next,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return true,
                Err(seen) => current = seen,
            }
        }
    }

    /// Release `bytes` previously reserved. Releasing more than reserved is a
    /// bug in the caller; we saturate rather than wrap to keep experiments
    /// running, and debug builds assert.
    pub fn release(&self, bytes: u64) {
        let mut current = self.used.load(Ordering::Acquire);
        loop {
            debug_assert!(current >= bytes, "budget release underflow");
            let next = current.saturating_sub(bytes);
            match self.used.compare_exchange_weak(
                current,
                next,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }
}

/// An RAII reservation against a [`MemoryBudget`].
#[derive(Debug)]
pub struct Reservation {
    budget: Arc<MemoryBudget>,
    bytes: u64,
}

impl Reservation {
    /// Reserve `bytes` from `budget`, or `None` if it does not fit.
    pub fn try_new(budget: &Arc<MemoryBudget>, bytes: u64) -> Option<Self> {
        if budget.try_reserve(bytes) {
            Some(Reservation {
                budget: Arc::clone(budget),
                bytes,
            })
        } else {
            None
        }
    }

    /// The reserved size.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Drop for Reservation {
    fn drop(&mut self) {
        self.budget.release(self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_release() {
        let b = MemoryBudget::new(100);
        assert!(b.try_reserve(60));
        assert_eq!(b.used(), 60);
        assert!(!b.try_reserve(50));
        assert!(b.try_reserve(40));
        assert_eq!(b.available(), 0);
        b.release(100);
        assert_eq!(b.used(), 0);
    }

    #[test]
    fn unlimited_accepts_everything_reasonable() {
        let b = MemoryBudget::unlimited();
        assert!(b.try_reserve(1 << 40));
        assert!(b.try_reserve(1 << 40));
    }

    #[test]
    fn raii_reservation_releases_on_drop() {
        let b = MemoryBudget::new(10);
        {
            let r = Reservation::try_new(&b, 10).unwrap();
            assert_eq!(r.bytes(), 10);
            assert!(Reservation::try_new(&b, 1).is_none());
        }
        assert_eq!(b.used(), 0);
    }

    #[test]
    fn concurrent_reservations_never_exceed_capacity() {
        let b = MemoryBudget::new(1000);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..100 {
                        if b.try_reserve(10) {
                            assert!(b.used() <= 1000);
                            b.release(10);
                        }
                    }
                });
            }
        });
        assert_eq!(b.used(), 0);
    }
}
