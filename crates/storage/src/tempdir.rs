//! Minimal temporary-directory helper (removed on drop).
//!
//! The external sorter and the experiment harness need scratch space; we
//! avoid an external crate by implementing the tiny subset we need.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::Result;

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A directory under the system temp root that is deleted when dropped.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
    /// When true (default) the directory tree is removed on drop.
    cleanup: bool,
}

impl TempDir {
    /// Create a fresh directory whose name embeds `label`, the process id and
    /// a global counter, so concurrent tests never collide.
    pub fn new(label: &str) -> Result<Self> {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("coconut-{label}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path)?;
        Ok(TempDir {
            path,
            cleanup: true,
        })
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Keep the directory on disk after drop (useful when debugging).
    pub fn keep(mut self) -> PathBuf {
        self.cleanup = false;
        self.path.clone()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        if self.cleanup {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_and_removes() {
        let p;
        {
            let d = TempDir::new("t").unwrap();
            p = d.path().to_path_buf();
            assert!(p.is_dir());
            std::fs::write(p.join("x"), b"1").unwrap();
        }
        assert!(!p.exists());
    }

    #[test]
    fn unique_paths() {
        let a = TempDir::new("u").unwrap();
        let b = TempDir::new("u").unwrap();
        assert_ne!(a.path(), b.path());
    }

    #[test]
    fn keep_preserves() {
        let d = TempDir::new("k").unwrap();
        let p = d.keep();
        assert!(p.is_dir());
        std::fs::remove_dir_all(&p).unwrap();
    }
}
