//! I/O accounting in the disk access model.
//!
//! The paper analyzes every algorithm in the disk access model of Aggarwal &
//! Vitter (Section 3, Table 1): cost is the number of blocks transferred
//! between memory and secondary storage, and *random* transfers are far more
//! expensive than *sequential* ones on spinning disks (the paper's testbed is
//! a 5×2TB SATA RAID). Since a reproduction cannot assume the same hardware,
//! every experiment in this workspace reports the modeled I/O alongside wall
//! clock: an access is classified as sequential when it starts exactly where
//! the previous access on the same handle ended, and random otherwise.
//!
//! [`IoStats`] is shared (via `Arc`) between all files that belong to one
//! logical experiment so that a single snapshot captures the full cost of an
//! index build or a query batch.

use std::sync::atomic::{AtomicU64, Ordering};

/// Thread-safe I/O counters, classified by direction and locality.
#[derive(Debug, Default)]
pub struct IoStats {
    seq_reads: AtomicU64,
    rand_reads: AtomicU64,
    seq_writes: AtomicU64,
    rand_writes: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
}

/// A point-in-time copy of [`IoStats`], suitable for diffing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    /// Read operations that continued from the previous file offset.
    pub seq_reads: u64,
    /// Read operations that required a seek.
    pub rand_reads: u64,
    /// Write operations that continued from the previous file offset.
    pub seq_writes: u64,
    /// Write operations that required a seek.
    pub rand_writes: u64,
    /// Total bytes read.
    pub bytes_read: u64,
    /// Total bytes written.
    pub bytes_written: u64,
}

/// A simple disk model used to convert an [`IoSnapshot`] into estimated
/// seconds, so experiments can report "modeled time on the paper's hardware
/// class" independent of the machine they actually ran on.
#[derive(Debug, Clone, Copy)]
pub struct DiskProfile {
    /// Cost of one random access (seek + rotational latency), in seconds.
    pub seek_s: f64,
    /// Sequential throughput in bytes per second.
    pub seq_bytes_per_s: f64,
}

impl Default for DiskProfile {
    /// A 7200 RPM SATA drive similar to the paper's testbed: ~8.5 ms per
    /// random access, ~160 MB/s sequential.
    fn default() -> Self {
        DiskProfile {
            seek_s: 8.5e-3,
            seq_bytes_per_s: 160.0 * 1024.0 * 1024.0,
        }
    }
}

impl DiskProfile {
    /// An NVMe-like profile, for sensitivity analysis: random accesses are
    /// only ~10x more expensive than sequential ones instead of ~1000x.
    pub fn nvme() -> Self {
        DiskProfile {
            seek_s: 60.0e-6,
            seq_bytes_per_s: 2.5e9,
        }
    }
}

impl IoStats {
    /// New, zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one read of `bytes` bytes; `sequential` is the caller's
    /// locality classification.
    #[inline]
    pub fn record_read(&self, bytes: u64, sequential: bool) {
        if sequential {
            self.seq_reads.fetch_add(1, Ordering::Relaxed);
        } else {
            self.rand_reads.fetch_add(1, Ordering::Relaxed);
        }
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record one write of `bytes` bytes.
    #[inline]
    pub fn record_write(&self, bytes: u64, sequential: bool) {
        if sequential {
            self.seq_writes.fetch_add(1, Ordering::Relaxed);
        } else {
            self.rand_writes.fetch_add(1, Ordering::Relaxed);
        }
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Capture the current counter values.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            seq_reads: self.seq_reads.load(Ordering::Relaxed),
            rand_reads: self.rand_reads.load(Ordering::Relaxed),
            seq_writes: self.seq_writes.load(Ordering::Relaxed),
            rand_writes: self.rand_writes.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
        }
    }

    /// Add every counter of `snap` to this sink. Used by parallel pipelines
    /// whose workers account I/O privately (so per-worker locality
    /// classification is not scrambled by interleaving) and fold their
    /// totals into the shared experiment stats when they join.
    pub fn absorb(&self, snap: &IoSnapshot) {
        self.seq_reads.fetch_add(snap.seq_reads, Ordering::Relaxed);
        self.rand_reads
            .fetch_add(snap.rand_reads, Ordering::Relaxed);
        self.seq_writes
            .fetch_add(snap.seq_writes, Ordering::Relaxed);
        self.rand_writes
            .fetch_add(snap.rand_writes, Ordering::Relaxed);
        self.bytes_read
            .fetch_add(snap.bytes_read, Ordering::Relaxed);
        self.bytes_written
            .fetch_add(snap.bytes_written, Ordering::Relaxed);
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.seq_reads.store(0, Ordering::Relaxed);
        self.rand_reads.store(0, Ordering::Relaxed);
        self.seq_writes.store(0, Ordering::Relaxed);
        self.rand_writes.store(0, Ordering::Relaxed);
        self.bytes_read.store(0, Ordering::Relaxed);
        self.bytes_written.store(0, Ordering::Relaxed);
    }
}

impl IoSnapshot {
    /// Counters accumulated since `earlier` (which must be from the same
    /// [`IoStats`]; counters are monotonic so saturating subtraction is safe).
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            seq_reads: self.seq_reads.saturating_sub(earlier.seq_reads),
            rand_reads: self.rand_reads.saturating_sub(earlier.rand_reads),
            seq_writes: self.seq_writes.saturating_sub(earlier.seq_writes),
            rand_writes: self.rand_writes.saturating_sub(earlier.rand_writes),
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
        }
    }

    /// Total operations, regardless of class.
    pub fn total_ops(&self) -> u64 {
        self.seq_reads + self.rand_reads + self.seq_writes + self.rand_writes
    }

    /// Random operations (the expensive kind on the paper's hardware).
    pub fn random_ops(&self) -> u64 {
        self.rand_reads + self.rand_writes
    }

    /// Total bytes moved in either direction.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Estimated seconds under a [`DiskProfile`]: every random op pays one
    /// seek, and all bytes stream at the sequential rate.
    pub fn modeled_seconds(&self, profile: &DiskProfile) -> f64 {
        self.random_ops() as f64 * profile.seek_s
            + self.total_bytes() as f64 / profile.seq_bytes_per_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn records_and_classifies() {
        let s = IoStats::new();
        s.record_read(100, true);
        s.record_read(50, false);
        s.record_write(10, true);
        s.record_write(10, false);
        let snap = s.snapshot();
        assert_eq!(snap.seq_reads, 1);
        assert_eq!(snap.rand_reads, 1);
        assert_eq!(snap.seq_writes, 1);
        assert_eq!(snap.rand_writes, 1);
        assert_eq!(snap.bytes_read, 150);
        assert_eq!(snap.bytes_written, 20);
        assert_eq!(snap.total_ops(), 4);
        assert_eq!(snap.random_ops(), 2);
        assert_eq!(snap.total_bytes(), 170);
    }

    #[test]
    fn since_diffs_counters() {
        let s = IoStats::new();
        s.record_read(100, true);
        let a = s.snapshot();
        s.record_read(100, false);
        s.record_write(7, true);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.seq_reads, 0);
        assert_eq!(d.rand_reads, 1);
        assert_eq!(d.seq_writes, 1);
        assert_eq!(d.bytes_read, 100);
        assert_eq!(d.bytes_written, 7);
    }

    #[test]
    fn modeled_seconds_penalizes_random() {
        let profile = DiskProfile::default();
        let sequential = IoSnapshot {
            seq_reads: 1000,
            bytes_read: 8_192_000,
            ..Default::default()
        };
        let random = IoSnapshot {
            rand_reads: 1000,
            bytes_read: 8_192_000,
            ..Default::default()
        };
        assert!(random.modeled_seconds(&profile) > 10.0 * sequential.modeled_seconds(&profile));
    }

    #[test]
    fn absorb_adds_counters() {
        let worker = IoStats::new();
        worker.record_read(100, true);
        worker.record_write(30, false);
        let shared = IoStats::new();
        shared.record_read(1, false);
        shared.absorb(&worker.snapshot());
        let snap = shared.snapshot();
        assert_eq!(snap.seq_reads, 1);
        assert_eq!(snap.rand_reads, 1);
        assert_eq!(snap.rand_writes, 1);
        assert_eq!(snap.bytes_read, 101);
        assert_eq!(snap.bytes_written, 30);
    }

    #[test]
    fn reset_zeroes() {
        let s = IoStats::new();
        s.record_read(1, true);
        s.reset();
        assert_eq!(s.snapshot(), IoSnapshot::default());
    }

    #[test]
    fn concurrent_updates_are_not_lost() {
        let s = Arc::new(IoStats::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    s.record_read(1, true);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.snapshot().seq_reads, 4000);
        assert_eq!(s.snapshot().bytes_read, 4000);
    }
}
