//! A positioned file handle that feeds [`IoStats`].
//!
//! [`CountedFile`] wraps a [`std::fs::File`] and classifies every access as
//! sequential (it begins exactly where the previous access on this handle
//! ended) or random. All index and dataset files in the workspace are
//! accessed through this type so that experiments can report disk-access
//! model costs.

use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::error::Result;
use crate::iostats::IoStats;

/// A file whose reads and writes are recorded in a shared [`IoStats`].
///
/// All operations are positioned (`pread`/`pwrite`), so a `CountedFile` can
/// be shared across threads without any seek-pointer races; the sequential /
/// random classification uses an atomic "expected next offset".
#[derive(Debug)]
pub struct CountedFile {
    file: File,
    path: PathBuf,
    stats: Arc<IoStats>,
    /// Offset one past the end of the last access; used to classify locality.
    next_offset: AtomicU64,
    /// Current logical length (maintained on append).
    len: AtomicU64,
}

impl CountedFile {
    /// Create (truncating) a new file at `path`.
    pub fn create(path: impl AsRef<Path>, stats: Arc<IoStats>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        Ok(CountedFile {
            file,
            path,
            stats,
            next_offset: AtomicU64::new(0),
            len: AtomicU64::new(0),
        })
    }

    /// Open an existing file read-only.
    pub fn open(path: impl AsRef<Path>, stats: Arc<IoStats>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().read(true).open(&path)?;
        let len = file.metadata()?.len();
        Ok(CountedFile {
            file,
            path,
            stats,
            next_offset: AtomicU64::new(u64::MAX), // first access counts as random
            len: AtomicU64::new(len),
        })
    }

    /// Open an existing file for reading and writing.
    pub fn open_rw(path: impl AsRef<Path>, stats: Arc<IoStats>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        let len = file.metadata()?.len();
        Ok(CountedFile {
            file,
            path,
            stats,
            next_offset: AtomicU64::new(u64::MAX),
            len: AtomicU64::new(len),
        })
    }

    /// The path this file was opened at.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The shared statistics sink.
    pub fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    /// Current file length in bytes.
    pub fn len(&self) -> u64 {
        self.len.load(Ordering::Acquire)
    }

    /// Whether the file is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn classify(&self, offset: u64, len: u64) -> bool {
        // swap: record where this access ends; sequential iff it starts where
        // the last one ended.
        let prev = self.next_offset.swap(offset + len, Ordering::AcqRel);
        prev == offset
    }

    /// Read exactly `buf.len()` bytes starting at `offset`.
    pub fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> Result<()> {
        let sequential = self.classify(offset, buf.len() as u64);
        self.file.read_exact_at(buf, offset)?;
        self.stats.record_read(buf.len() as u64, sequential);
        Ok(())
    }

    /// Write all of `buf` starting at `offset`, extending the file if needed.
    pub fn write_all_at(&self, buf: &[u8], offset: u64) -> Result<()> {
        let sequential = self.classify(offset, buf.len() as u64);
        self.file.write_all_at(buf, offset)?;
        self.stats.record_write(buf.len() as u64, sequential);
        let end = offset + buf.len() as u64;
        self.len.fetch_max(end, Ordering::AcqRel);
        Ok(())
    }

    /// Append `buf` at the current end of file; returns the offset it was
    /// written at.
    pub fn append(&self, buf: &[u8]) -> Result<u64> {
        let offset = self.len.fetch_add(buf.len() as u64, Ordering::AcqRel);
        let sequential = self.classify(offset, buf.len() as u64);
        self.file.write_all_at(buf, offset)?;
        self.stats.record_write(buf.len() as u64, sequential);
        Ok(offset)
    }

    /// Flush file contents to the OS.
    pub fn sync(&self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;

    fn setup() -> (TempDir, Arc<IoStats>) {
        (
            TempDir::new("countedfile").unwrap(),
            Arc::new(IoStats::new()),
        )
    }

    #[test]
    fn roundtrip_and_len() {
        let (dir, stats) = setup();
        let f = CountedFile::create(dir.path().join("a.bin"), stats).unwrap();
        assert!(f.is_empty());
        let off = f.append(b"hello").unwrap();
        assert_eq!(off, 0);
        let off = f.append(b" world").unwrap();
        assert_eq!(off, 5);
        assert_eq!(f.len(), 11);
        let mut buf = [0u8; 11];
        f.read_exact_at(&mut buf, 0).unwrap();
        assert_eq!(&buf, b"hello world");
    }

    #[test]
    fn sequential_vs_random_classification() {
        let (dir, stats) = setup();
        let f = CountedFile::create(dir.path().join("a.bin"), Arc::clone(&stats)).unwrap();
        f.append(&[0u8; 4096]).unwrap(); // first access: offset 0 == initial next_offset 0 -> sequential
        f.append(&[0u8; 4096]).unwrap(); // sequential
        let snap = stats.snapshot();
        assert_eq!(snap.seq_writes, 2);
        assert_eq!(snap.rand_writes, 0);

        let mut buf = [0u8; 16];
        f.read_exact_at(&mut buf, 100).unwrap(); // random: last end was 8192
        f.read_exact_at(&mut buf, 116).unwrap(); // sequential continuation
        f.read_exact_at(&mut buf, 0).unwrap(); // random again
        let snap = stats.snapshot();
        assert_eq!(snap.seq_reads, 1);
        assert_eq!(snap.rand_reads, 2);
    }

    #[test]
    fn reopen_sees_data_and_first_read_is_random() {
        let (dir, stats) = setup();
        let path = dir.path().join("a.bin");
        {
            let f = CountedFile::create(&path, Arc::clone(&stats)).unwrap();
            f.append(b"abcd").unwrap();
            f.sync().unwrap();
        }
        let f = CountedFile::open(&path, Arc::clone(&stats)).unwrap();
        assert_eq!(f.len(), 4);
        let mut buf = [0u8; 4];
        f.read_exact_at(&mut buf, 0).unwrap();
        assert_eq!(&buf, b"abcd");
        assert_eq!(stats.snapshot().rand_reads, 1);
    }

    #[test]
    fn write_all_at_extends_len() {
        let (dir, stats) = setup();
        let f = CountedFile::create(dir.path().join("a.bin"), stats).unwrap();
        f.write_all_at(b"xy", 100).unwrap();
        assert_eq!(f.len(), 102);
        // Writing inside the file must not shrink it.
        f.write_all_at(b"z", 3).unwrap();
        assert_eq!(f.len(), 102);
    }

    #[test]
    fn short_read_is_an_error() {
        let (dir, stats) = setup();
        let f = CountedFile::create(dir.path().join("a.bin"), stats).unwrap();
        f.append(b"abc").unwrap();
        let mut buf = [0u8; 10];
        assert!(f.read_exact_at(&mut buf, 0).is_err());
    }
}
