//! Atomic file replacement and payload checksumming.
//!
//! Crash-safe metadata (the LSM manifest in `coconut-core`, and any future
//! catalog file) follows the classic recipe this module packages:
//!
//! 1. write the full new contents to a *sibling* temporary file,
//! 2. `fsync` the temporary file so its bytes are durable,
//! 3. `rename` it over the final path (atomic on POSIX filesystems),
//! 4. `fsync` the parent directory so the rename itself is durable.
//!
//! A crash at any point leaves either the old file or the new file intact —
//! never a torn mixture. Readers additionally verify a [`crc64`] checksum
//! over the payload, so a torn *temporary* file (or bit rot) is detected
//! rather than parsed.
//!
//! Every step is also a [`crate::fault`] hook: an installed fault plan can
//! fail the temp write (`atomic.write`, including `short` torn writes),
//! the fsyncs (`atomic.fsync`), or the rename (`atomic.rename`) — the
//! deterministic crash schedule `repro chaos` recovers from.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;

use crate::error::{Error, Result};
use crate::fault::{self, FaultAction};

/// CRC-64/ECMA-182 polynomial, reflected.
const CRC64_POLY: u64 = 0xC96C_5795_D787_0F42;

const fn crc64_table() -> [u64; 256] {
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u64;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ CRC64_POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC64_TABLE: [u64; 256] = crc64_table();

/// CRC-64 (ECMA-182, reflected) of `bytes`. Used to checksum manifest
/// payloads; not a cryptographic hash.
pub fn crc64(bytes: &[u8]) -> u64 {
    let mut crc = u64::MAX;
    for &b in bytes {
        let idx = ((crc ^ b as u64) & 0xFF) as usize;
        crc = (crc >> 8) ^ CRC64_TABLE[idx];
    }
    !crc
}

/// The sibling temporary path used by [`atomic_write`] for `path`
/// (`<name>.tmp` in the same directory, so the rename never crosses a
/// filesystem boundary).
pub fn temp_path(path: &Path) -> std::path::PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// `fsync` a directory so the entries created (or renamed) inside it are
/// durable. Needed whenever a durable file in `dir` is the *point* of an
/// operation — fsyncing the file alone does not persist its directory
/// entry.
pub fn sync_dir(dir: &Path) -> Result<()> {
    fault::check("atomic.fsync")?;
    File::open(dir)?.sync_all()?;
    Ok(())
}

fn sync_parent_dir(path: &Path) -> Result<()> {
    if let Some(parent) = path.parent() {
        // An empty parent means "the current directory".
        let parent = if parent.as_os_str().is_empty() {
            Path::new(".")
        } else {
            parent
        };
        sync_dir(parent)?;
    }
    Ok(())
}

/// Atomically replace the contents of `path` with `bytes`
/// (write-temp + fsync + rename + fsync-dir). On return the new contents
/// are durable; on a crash at any point the previous contents (or absence)
/// of `path` survive intact.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<()> {
    let tmp = temp_path(path);
    write_temp(&tmp, bytes, bytes.len())?;
    fault::check("atomic.rename")?;
    std::fs::rename(&tmp, path)?;
    sync_parent_dir(path)
}

/// Write `prefix_len` bytes of `bytes` to the temporary sibling of `path`
/// **without renaming it into place** — the crash-injection half of
/// [`atomic_write`], used by kill-point tests to simulate a process dying
/// mid-write. Returns the temporary path it wrote.
pub fn atomic_write_torn(
    path: &Path,
    bytes: &[u8],
    prefix_len: usize,
) -> Result<std::path::PathBuf> {
    let tmp = temp_path(path);
    write_temp(&tmp, bytes, prefix_len.min(bytes.len()))?;
    Ok(tmp)
}

fn write_temp(tmp: &Path, bytes: &[u8], len: usize) -> Result<()> {
    // Injected faults: `err` fails before any byte lands, `short` leaves a
    // torn prefix behind (the temp file is never renamed, so readers see
    // either the old contents or detect the torn temp during recovery).
    let len = match fault::fires("atomic.write") {
        None => len,
        Some(FaultAction::ShortWrite) => {
            let torn = len / 2;
            let mut file = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(tmp)?;
            file.write_all(&bytes[..torn])?;
            return Err(fault::injected_error("atomic.write"));
        }
        Some(_) => return Err(fault::injected_error("atomic.write")),
    };
    let mut file = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(tmp)?;
    file.write_all(&bytes[..len])?;
    fault::check("atomic.fsync")?;
    file.sync_all()?;
    Ok(())
}

/// Read the full contents of `path`, mapping a missing file to
/// [`Error::Corrupt`] with the given context string.
pub fn read_all(path: &Path, what: &str) -> Result<Vec<u8>> {
    std::fs::read(path).map_err(|e| {
        if e.kind() == std::io::ErrorKind::NotFound {
            Error::corrupt(format!("{what} not found at {}", path.display()))
        } else {
            Error::Io(e)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;

    #[test]
    fn crc64_known_values() {
        // The empty string checksums to 0; any change to the input changes
        // the checksum.
        assert_eq!(crc64(b""), 0);
        let a = crc64(b"123456789");
        let b = crc64(b"123456788");
        assert_ne!(a, 0);
        assert_ne!(a, b);
        // Stable across calls (the table is precomputed once).
        assert_eq!(crc64(b"123456789"), a);
    }

    #[test]
    fn atomic_write_replaces_and_removes_temp() {
        let dir = TempDir::new("atomic").unwrap();
        let path = dir.path().join("MANIFEST");
        atomic_write(&path, b"v1").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"v1");
        atomic_write(&path, b"version-two").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"version-two");
        assert!(!temp_path(&path).exists(), "temp must be renamed away");
    }

    #[test]
    fn torn_write_leaves_old_contents_intact() {
        let dir = TempDir::new("atomic").unwrap();
        let path = dir.path().join("MANIFEST");
        atomic_write(&path, b"old").unwrap();
        let tmp = atomic_write_torn(&path, b"new-contents", 5).unwrap();
        // The final file still holds the old version; the torn temp holds
        // only the prefix.
        assert_eq!(std::fs::read(&path).unwrap(), b"old");
        assert_eq!(std::fs::read(&tmp).unwrap(), b"new-c");
    }

    #[test]
    fn read_all_maps_missing_to_corrupt() {
        let dir = TempDir::new("atomic").unwrap();
        let err = read_all(&dir.path().join("nope"), "manifest").unwrap_err();
        assert!(err.to_string().contains("manifest not found"));
    }
}
