//! End-to-end robustness over a real TCP fabric: idle-read timeouts,
//! deterministic socket fault injection, and graceful degradation when a
//! shard dies mid-service.
//!
//! The fault plan registry is process-global, and the idle/degradation
//! tests also move request traffic through the fault sites, so every test
//! here serializes on one mutex.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use coconut_core::{BuildOptions, IndexConfig, LsmCoconut};
use coconut_series::dataset::{write_dataset, Dataset};
use coconut_series::gen::RandomWalkGen;
use coconut_server::{ClientConfig, CoordinatorEngine, Engine, Server, ServerConfig};
use coconut_storage::{FaultPlan, IoStats, TempDir};

const LEN: usize = 64;

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn dataset(dir: &TempDir, n: u64) -> Dataset {
    let stats = Arc::new(IoStats::new());
    let path = dir.path().join("data.ds");
    write_dataset(&path, &mut RandomWalkGen::new(3), n, LEN, &stats).unwrap();
    Dataset::open(&path, stats).unwrap()
}

fn small_config() -> IndexConfig {
    let mut c = IndexConfig::default_for_len(LEN);
    c.leaf_capacity = 32;
    c
}

fn server_config(idle_timeout_ms: Option<u64>) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue: 8,
        default_deadline_ms: Some(5000),
        idle_timeout_ms,
    }
}

fn start_shard(dir: &TempDir, name: &str, ds: &Dataset) -> Server<Engine> {
    let engine = Arc::new(Engine::new_shard(
        ds.clone(),
        dir.path().join(name),
        small_config(),
        BuildOptions::default(),
        None,
        Some(Duration::from_secs(5)),
    ));
    Server::start(engine, &server_config(None)).unwrap()
}

/// A retry/breaker budget small enough that a dead shard is detected in
/// milliseconds, not seconds.
fn fast_client() -> ClientConfig {
    ClientConfig {
        connect_timeout: Duration::from_millis(250),
        request_timeout: Duration::from_secs(5),
        retries: 2,
        backoff_start: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(10),
        down_backoff_start: Duration::from_millis(40),
        down_backoff_cap: Duration::from_millis(80),
    }
}

#[test]
fn idle_connections_are_closed_and_counted() {
    let _guard = serial();
    let dir = TempDir::new("srv-idle").unwrap();
    let ds = dataset(&dir, 60);
    let lsm = Arc::new(
        LsmCoconut::new(
            small_config(),
            BuildOptions::default(),
            dir.path().join("i"),
        )
        .unwrap(),
    );
    lsm.ingest_upto(&ds, 60).unwrap();
    let engine = Arc::new(Engine::new(lsm, ds, None));
    let mut server = Server::start(
        Arc::clone(&engine),
        &ServerConfig {
            idle_timeout_ms: Some(100),
            ..server_config(None)
        },
    )
    .unwrap();

    let stream = TcpStream::connect(server.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    // An active connection answers normally...
    (&stream).write_all(b"PING\n").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim_end(), "OK pong");
    // ...then going quiet gets a typed goodbye and EOF.
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(
        line.starts_with("ERR unavailable: idle-read timeout"),
        "{line:?}"
    );
    line.clear();
    assert_eq!(reader.read_line(&mut line).unwrap(), 0, "expected EOF");
    assert_eq!(engine.metrics().idle_disconnects.get(), 1);
    assert!(engine
        .metrics_text()
        .contains("coconut_idle_disconnect_total 1"));
    server.shutdown();
}

#[test]
fn coordinator_degrades_when_a_shard_dies() {
    let _guard = serial();
    let dir = TempDir::new("srv-degraded").unwrap();
    let ds = dataset(&dir, 200);
    let s0 = start_shard(&dir, "s0", &ds);
    let mut s1 = start_shard(&dir, "s1", &ds);
    let addrs = vec![s0.addr().to_string(), s1.addr().to_string()];
    let coord = CoordinatorEngine::new(
        &addrs,
        ds.clone(),
        fast_client(),
        Some(Duration::from_secs(5)),
    )
    .unwrap();
    let reply = coord.execute_line("BUILD start=0 end=200").reply;
    assert!(reply.starts_with("OK build"), "{reply}");

    // While every shard is alive, a degraded reply is byte-identical to
    // the strict one.
    let strict = coord.execute_line("EXACT q=seed:9").reply;
    assert!(strict.starts_with("OK exact pos="), "{strict}");
    let complete = coord.execute_line("EXACT q=seed:9 mode=degraded").reply;
    assert_eq!(complete, strict);

    // Kill the shard owning 100..200.
    s1.shutdown();

    // Strict mode refuses with a typed error rather than answering over a
    // hole.
    let reply = coord.execute_line("EXACT q=seed:9").reply;
    assert!(reply.starts_with("ERR unavailable:"), "{reply}");

    // Degraded mode answers over the live slice and names the hole.
    let reply = coord.execute_line("EXACT q=seed:9 mode=degraded").reply;
    assert!(reply.starts_with("OK exact pos="), "{reply}");
    assert!(reply.contains("degraded=1 missing=100..200"), "{reply}");
    let pos: u64 = reply
        .split("pos=")
        .nth(1)
        .unwrap()
        .split_whitespace()
        .next()
        .unwrap()
        .parse()
        .unwrap();
    assert!(pos < 100, "answer must come from the live slice: {reply}");

    let reply = coord.execute_line("KNN k=3 q=seed:9 mode=degraded").reply;
    assert!(reply.starts_with("OK knn"), "{reply}");
    assert!(reply.contains("degraded=1 missing=100..200"), "{reply}");

    let reply = coord
        .execute_line("RANGE eps=12 q=seed:9 mode=degraded")
        .reply;
    assert!(reply.starts_with("OK range"), "{reply}");
    assert!(reply.contains("degraded=1 missing=100..200"), "{reply}");

    assert!(coord.metrics().degraded.get() >= 3);
    assert!(coord
        .metrics()
        .render()
        .contains("coconut_coordinator_degraded_total"));
    drop(s0);
}

#[test]
fn injected_socket_faults_are_survived_by_retries() {
    let _guard = serial();
    let dir = TempDir::new("srv-faults").unwrap();
    let ds = dataset(&dir, 120);
    let s0 = start_shard(&dir, "s0", &ds);
    let addrs = vec![s0.addr().to_string()];
    let coord = CoordinatorEngine::new(
        &addrs,
        ds.clone(),
        fast_client(),
        Some(Duration::from_secs(5)),
    )
    .unwrap();
    let reply = coord.execute_line("BUILD start=0 end=120").reply;
    assert!(reply.starts_with("OK build"), "{reply}");
    let clean = coord.execute_line("EXACT q=seed:4").reply;
    assert!(clean.starts_with("OK exact pos="), "{clean}");

    // One injected client-side error and one injected server-side
    // connection drop: the retry budget must absorb both and recover the
    // byte-identical answer.
    let plan = FaultPlan::parse("client.io=err@1,server.read=drop@1", 7).unwrap();
    coconut_storage::fault::install(plan);
    let reply = coord.execute_line("EXACT q=seed:4").reply;
    coconut_storage::fault::clear();
    assert_eq!(reply, clean, "retries must recover the identical answer");
    drop(s0);
}
