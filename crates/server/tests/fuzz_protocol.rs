//! Fuzz-style robustness properties for the line-protocol parser: random
//! byte frames must never panic, hang, or produce an unbounded reply.
//!
//! The server decodes request lines with `from_utf8_lossy` before parsing,
//! so the property is driven the same way: arbitrary bytes → lossy string
//! → `parse`. Every rejection must be a typed `ParseError` whose display
//! stays one bounded line (the engine turns it into `ERR parse: ...`).

use proptest::prelude::*;

use coconut_server::parse;

/// A reply derived from a parse error must fit one bounded protocol line:
/// the error display truncates oversized tokens, and the engine strips
/// newlines before writing.
fn assert_bounded_error(line: &str) {
    if let Err(e) = parse(line) {
        let msg = e.to_string();
        assert!(
            msg.len() < 512,
            "parse error grew past one line ({} bytes) for input {:?}...",
            msg.len(),
            &line[..line.len().min(80)]
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary byte frames: no panic, bounded error replies.
    #[test]
    fn random_bytes_never_panic(
        bytes in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let line = String::from_utf8_lossy(&bytes).into_owned();
        assert_bounded_error(&line);
    }

    /// Frames that start like real verbs but carry arbitrary argument
    /// bytes: exercises every per-verb argument path.
    #[test]
    fn mangled_verb_frames_never_panic(
        verb in 0usize..10,
        bytes in proptest::collection::vec(any::<u8>(), 0..120),
    ) {
        let verbs = [
            "EXACT", "KNN", "RANGE", "INGEST", "BUILD",
            "SHARD-INFO", "STATS", "HEALTH", "PING", "QUIT",
        ];
        let tail = String::from_utf8_lossy(&bytes).into_owned();
        let line = format!("{} {tail}", verbs[verb]);
        assert_bounded_error(&line);
    }

    /// Structured-looking key=value garbage after a verb.
    #[test]
    fn keyword_salad_never_panics(
        k in any::<u64>(),
        junk in proptest::collection::vec(any::<u8>(), 0..40),
    ) {
        let tail = String::from_utf8_lossy(&junk).into_owned();
        for line in [
            format!("KNN k={k} q=seed:{tail}"),
            format!("EXACT q=v:{tail} bound={tail}"),
            format!("BUILD start={k} end={tail}"),
            format!("RANGE eps={tail} q=pos:{k}"),
        ] {
            assert_bounded_error(&line);
        }
    }
}
