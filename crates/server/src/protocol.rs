//! The wire protocol: line-delimited requests, plain-text responses.
//!
//! A request is one line, `VERB key=value ...` (case-insensitive verb,
//! order-free arguments). Responses are one line starting `OK` or
//! `ERR <category>: <message>` — except `STATS`, whose multi-line
//! Prometheus body is terminated by a `# EOF` line. The same socket also
//! accepts minimal HTTP `GET`s (for `curl`/Prometheus scrapers); see
//! `crate::pool`.
//!
//! Query vectors come in three forms, so load generators, debuggers, and
//! real clients all have a convenient entry:
//!
//! * `q=seed:<n>` — a z-normalized random walk generated from seed `n`
//!   (deterministic: client and oracle can regenerate it);
//! * `q=pos:<n>` — the dataset's own series at position `n`;
//! * `q=v:<a,b,c,...>` — explicit comma-separated values.

use coconut_series::Value;
use coconut_storage::{Error, Result};

/// How a request names its query vector.
#[derive(Debug, Clone, PartialEq)]
pub enum QuerySpec {
    /// Generate a z-normalized random walk from this seed.
    Seed(u64),
    /// Use the dataset's series at this position.
    Pos(u64),
    /// Explicit values (must match the dataset's series length).
    Values(Vec<Value>),
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; answered `OK pong`.
    Ping,
    /// One-line health summary (covered prefix, run count).
    Health,
    /// Prometheus metrics, terminated by `# EOF`.
    Stats,
    /// Exact 1-NN.
    Exact {
        /// The query vector.
        query: QuerySpec,
        /// Per-request deadline in milliseconds (None = server default).
        deadline_ms: Option<u64>,
    },
    /// Exact k-NN.
    Knn {
        /// Number of neighbors.
        k: usize,
        /// The query vector.
        query: QuerySpec,
        /// Per-request deadline in milliseconds (None = server default).
        deadline_ms: Option<u64>,
    },
    /// Exact range query.
    Range {
        /// Inclusive Euclidean distance threshold.
        epsilon: f64,
        /// The query vector.
        query: QuerySpec,
        /// Per-request deadline in milliseconds (None = server default).
        deadline_ms: Option<u64>,
    },
    /// Index the dataset prefix up to `upto` (None = the whole dataset).
    Ingest {
        /// End (exclusive) of the prefix to cover.
        upto: Option<u64>,
    },
    /// Merge every run into one and wait for it.
    Compact,
    /// Sweep unpinned garbage run directories now.
    Gc,
    /// Close the connection.
    Quit,
}

fn bad(msg: impl std::fmt::Display) -> Error {
    Error::invalid(format!("protocol: {msg}"))
}

fn parse_query_spec(v: &str) -> Result<QuerySpec> {
    if let Some(seed) = v.strip_prefix("seed:") {
        return Ok(QuerySpec::Seed(
            seed.parse().map_err(|_| bad("q=seed: wants an integer"))?,
        ));
    }
    if let Some(pos) = v.strip_prefix("pos:") {
        return Ok(QuerySpec::Pos(
            pos.parse().map_err(|_| bad("q=pos: wants an integer"))?,
        ));
    }
    if let Some(vals) = v.strip_prefix("v:") {
        let parsed: std::result::Result<Vec<Value>, _> =
            vals.split(',').map(|x| x.trim().parse::<Value>()).collect();
        let parsed = parsed.map_err(|_| bad("q=v: wants comma-separated numbers"))?;
        if parsed.is_empty() {
            return Err(bad("q=v: needs at least one value"));
        }
        return Ok(QuerySpec::Values(parsed));
    }
    Err(bad("q= must be seed:<n>, pos:<n>, or v:<a,b,...>"))
}

/// Key-value arguments after the verb, with typed accessors.
struct Args<'a> {
    pairs: Vec<(&'a str, &'a str)>,
}

impl<'a> Args<'a> {
    fn parse(tokens: &[&'a str]) -> Result<Self> {
        let mut pairs = Vec::with_capacity(tokens.len());
        for t in tokens {
            let (k, v) = t
                .split_once('=')
                .ok_or_else(|| bad(format!("argument {t:?} is not key=value")))?;
            pairs.push((k, v));
        }
        Ok(Args { pairs })
    }

    fn get(&self, key: &str) -> Option<&'a str> {
        self.pairs.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }

    fn required_query(&self) -> Result<QuerySpec> {
        parse_query_spec(self.get("q").ok_or_else(|| bad("missing q="))?)
    }

    fn u64_opt(&self, key: &str) -> Result<Option<u64>> {
        self.get(key)
            .map(|v| {
                v.parse()
                    .map_err(|_| bad(format!("{key}= wants an integer")))
            })
            .transpose()
    }

    fn f64_req(&self, key: &str) -> Result<f64> {
        let v = self
            .get(key)
            .ok_or_else(|| bad(format!("missing {key}=")))?;
        let parsed: f64 = v
            .parse()
            .map_err(|_| bad(format!("{key}= wants a number")))?;
        if !parsed.is_finite() || parsed < 0.0 {
            return Err(bad(format!("{key}= must be finite and non-negative")));
        }
        Ok(parsed)
    }
}

/// Parse one request line. Empty (or all-whitespace) lines are invalid —
/// the connection handler skips them before calling this.
pub fn parse(line: &str) -> Result<Request> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    let Some((verb, rest)) = tokens.split_first() else {
        return Err(bad("empty request"));
    };
    let verb = verb.to_ascii_uppercase();
    let args = Args::parse(rest)?;
    match verb.as_str() {
        "PING" => Ok(Request::Ping),
        "HEALTH" => Ok(Request::Health),
        "STATS" | "METRICS" => Ok(Request::Stats),
        "EXACT" => Ok(Request::Exact {
            query: args.required_query()?,
            deadline_ms: args.u64_opt("deadline_ms")?,
        }),
        "KNN" => {
            let k = args
                .u64_opt("k")?
                .ok_or_else(|| bad("missing k="))?
                .try_into()
                .map_err(|_| bad("k= is too large"))?;
            Ok(Request::Knn {
                k,
                query: args.required_query()?,
                deadline_ms: args.u64_opt("deadline_ms")?,
            })
        }
        "RANGE" => Ok(Request::Range {
            epsilon: args.f64_req("eps")?,
            query: args.required_query()?,
            deadline_ms: args.u64_opt("deadline_ms")?,
        }),
        "INGEST" => Ok(Request::Ingest {
            upto: args.u64_opt("upto")?,
        }),
        "COMPACT" => Ok(Request::Compact),
        "GC" => Ok(Request::Gc),
        "QUIT" => Ok(Request::Quit),
        other => Err(bad(format!("unknown verb {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_query_verbs() {
        assert_eq!(parse("PING").unwrap(), Request::Ping);
        assert_eq!(parse("quit").unwrap(), Request::Quit);
        assert_eq!(
            parse("EXACT q=seed:7 deadline_ms=250").unwrap(),
            Request::Exact {
                query: QuerySpec::Seed(7),
                deadline_ms: Some(250),
            }
        );
        assert_eq!(
            parse("KNN k=5 q=pos:12").unwrap(),
            Request::Knn {
                k: 5,
                query: QuerySpec::Pos(12),
                deadline_ms: None,
            }
        );
        let r = parse("RANGE eps=1.5 q=v:0.5,-1,2.25").unwrap();
        assert_eq!(
            r,
            Request::Range {
                epsilon: 1.5,
                query: QuerySpec::Values(vec![0.5, -1.0, 2.25]),
                deadline_ms: None,
            }
        );
        assert_eq!(
            parse("INGEST upto=4000").unwrap(),
            Request::Ingest { upto: Some(4000) }
        );
        assert_eq!(parse("INGEST").unwrap(), Request::Ingest { upto: None });
    }

    #[test]
    fn rejects_malformed_requests() {
        for line in [
            "",
            "FROB",
            "EXACT",
            "EXACT q=walrus:1",
            "KNN q=seed:1",
            "KNN k=abc q=seed:1",
            "RANGE q=seed:1",
            "RANGE eps=-1 q=seed:1",
            "RANGE eps=nan q=seed:1",
            "EXACT q=v:",
            "INGEST upto=many",
        ] {
            assert!(parse(line).is_err(), "should reject {line:?}");
        }
    }
}
