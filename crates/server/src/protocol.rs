//! The wire protocol: line-delimited requests, plain-text responses.
//!
//! A request is one line, `VERB key=value ...` (case-insensitive verb,
//! order-free arguments). Responses are one line starting `OK` or
//! `ERR <category>: <message>` — except `STATS`, whose multi-line
//! Prometheus body is terminated by a `# EOF` line. The same socket also
//! accepts minimal HTTP `GET`s (for `curl`/Prometheus scrapers); see
//! `crate::pool`.
//!
//! Malformed lines never drop the connection: [`parse`] returns a typed
//! [`ParseError`] naming the offending token, which the engine surfaces as
//! a one-line `ERR parse: ...` reply (bounded in length no matter what the
//! client sent — see [`ParseError::new`]).
//!
//! Query vectors come in three forms, so load generators, debuggers, and
//! real clients all have a convenient entry:
//!
//! * `q=seed:<n>` — a z-normalized random walk generated from seed `n`
//!   (deterministic: client and oracle can regenerate it);
//! * `q=pos:<n>` — the dataset's own series at position `n`;
//! * `q=v:<a,b,c,...>` — explicit comma-separated values.
//!
//! The shard fabric adds two verbs and one argument: `SHARD-INFO` reports a
//! worker's assigned slice and ingest progress, `BUILD start=<s> end=<e>
//! [upto=<n>]` assigns a slice and indexes it, and `bound=<d>` on
//! `EXACT`/`KNN` carries the coordinator's pruning bound (candidates at or
//! beyond it cannot enter the merged answer and are not returned).
//!
//! Query verbs accept `mode=strict|degraded` (default strict). Strict
//! queries fail when any shard is unreachable; degraded queries answer
//! over the live shards and append `degraded=1 missing=<a..b,...>` naming
//! the unconsulted slices. When every shard answers, a degraded reply is
//! byte-identical to the strict one. A single node has no shards to lose,
//! so `mode=degraded` is accepted but never degrades there.

use coconut_series::Value;

/// A request line the parser could not understand: what was wrong, plus the
/// offending token so clients can locate the mistake.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What was expected or violated.
    pub msg: String,
    /// The token that failed to parse (empty when the whole line is at
    /// fault, e.g. an empty request). Truncated to a bounded length so the
    /// error reply stays small no matter what arrived on the wire.
    pub token: String,
}

/// Longest offending-token excerpt kept in a [`ParseError`]; anything
/// longer is truncated with an ellipsis so replies stay bounded.
const MAX_TOKEN_EXCERPT: usize = 64;

impl ParseError {
    /// Build a parse error for `token` (pass `""` when no single token is
    /// at fault). The token excerpt is truncated to a bounded length.
    pub fn new(msg: impl std::fmt::Display, token: &str) -> Self {
        let token = if token.len() > MAX_TOKEN_EXCERPT {
            let mut cut = MAX_TOKEN_EXCERPT;
            while !token.is_char_boundary(cut) {
                cut -= 1;
            }
            format!("{}...", &token[..cut])
        } else {
            token.to_string()
        };
        ParseError {
            msg: msg.to_string(),
            token,
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.token.is_empty() {
            write!(f, "{}", self.msg)
        } else {
            write!(f, "{} (offending token {:?})", self.msg, self.token)
        }
    }
}

impl std::error::Error for ParseError {}

/// Result alias for the request parser.
pub type ParseResult<T> = std::result::Result<T, ParseError>;

/// How a request names its query vector.
#[derive(Debug, Clone, PartialEq)]
pub enum QuerySpec {
    /// Generate a z-normalized random walk from this seed.
    Seed(u64),
    /// Use the dataset's series at this position.
    Pos(u64),
    /// Explicit values (must match the dataset's series length).
    Values(Vec<Value>),
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; answered `OK pong`.
    Ping,
    /// One-line health summary (covered prefix, run count).
    Health,
    /// Prometheus metrics, terminated by `# EOF`.
    Stats,
    /// Exact 1-NN.
    Exact {
        /// The query vector.
        query: QuerySpec,
        /// Per-request deadline in milliseconds (None = server default).
        deadline_ms: Option<u64>,
        /// Pruning bound from a coordinator's earlier shards (None = no
        /// bound); only candidates strictly below it are returned.
        bound: Option<f64>,
        /// `mode=degraded`: tolerate unreachable shards and report the
        /// missing slices instead of failing.
        degraded: bool,
    },
    /// Exact k-NN.
    Knn {
        /// Number of neighbors.
        k: usize,
        /// The query vector.
        query: QuerySpec,
        /// Per-request deadline in milliseconds (None = server default).
        deadline_ms: Option<u64>,
        /// Pruning bound from a coordinator's earlier shards (None = no
        /// bound); only candidates strictly below it are returned.
        bound: Option<f64>,
        /// `mode=degraded`: tolerate unreachable shards and report the
        /// missing slices instead of failing.
        degraded: bool,
    },
    /// Exact range query.
    Range {
        /// Inclusive Euclidean distance threshold.
        epsilon: f64,
        /// The query vector.
        query: QuerySpec,
        /// Per-request deadline in milliseconds (None = server default).
        deadline_ms: Option<u64>,
        /// `mode=degraded`: tolerate unreachable shards and report the
        /// missing slices instead of failing.
        degraded: bool,
    },
    /// Index the dataset prefix up to `upto` (None = the whole dataset).
    Ingest {
        /// End (exclusive) of the prefix to cover.
        upto: Option<u64>,
    },
    /// Assign the shard slice `start..end` and index it up to `upto`
    /// (None = the whole slice). On an unassigned shard worker this creates
    /// (or recovers) the slice index; elsewhere it must match the existing
    /// assignment.
    Build {
        /// First position of the assigned slice.
        start: u64,
        /// One past the last position of the assigned slice.
        end: u64,
        /// Index the slice up to here (clamped into `start..end`).
        upto: Option<u64>,
    },
    /// Report the shard's assigned slice and ingest progress.
    ShardInfo,
    /// Merge every run into one and wait for it.
    Compact,
    /// Sweep unpinned garbage run directories now.
    Gc,
    /// Close the connection.
    Quit,
}

fn bad(msg: impl std::fmt::Display, token: &str) -> ParseError {
    ParseError::new(msg, token)
}

fn parse_query_spec(v: &str) -> ParseResult<QuerySpec> {
    if let Some(seed) = v.strip_prefix("seed:") {
        return Ok(QuerySpec::Seed(
            seed.parse()
                .map_err(|_| bad("q=seed: wants an integer", v))?,
        ));
    }
    if let Some(pos) = v.strip_prefix("pos:") {
        return Ok(QuerySpec::Pos(
            pos.parse().map_err(|_| bad("q=pos: wants an integer", v))?,
        ));
    }
    if let Some(vals) = v.strip_prefix("v:") {
        let parsed: std::result::Result<Vec<Value>, _> =
            vals.split(',').map(|x| x.trim().parse::<Value>()).collect();
        let parsed = parsed.map_err(|_| bad("q=v: wants comma-separated numbers", v))?;
        if parsed.is_empty() {
            return Err(bad("q=v: needs at least one value", v));
        }
        return Ok(QuerySpec::Values(parsed));
    }
    Err(bad("q= must be seed:<n>, pos:<n>, or v:<a,b,...>", v))
}

/// Key-value arguments after the verb, with typed accessors.
struct Args<'a> {
    pairs: Vec<(&'a str, &'a str)>,
}

impl<'a> Args<'a> {
    fn parse(tokens: &[&'a str]) -> ParseResult<Self> {
        let mut pairs = Vec::with_capacity(tokens.len());
        for t in tokens {
            let (k, v) = t
                .split_once('=')
                .ok_or_else(|| bad("argument is not key=value", t))?;
            pairs.push((k, v));
        }
        Ok(Args { pairs })
    }

    fn get(&self, key: &str) -> Option<&'a str> {
        self.pairs.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }

    fn required_query(&self) -> ParseResult<QuerySpec> {
        parse_query_spec(self.get("q").ok_or_else(|| bad("missing q=", ""))?)
    }

    fn u64_opt(&self, key: &str) -> ParseResult<Option<u64>> {
        self.get(key)
            .map(|v| {
                v.parse()
                    .map_err(|_| bad(format!("{key}= wants an integer"), v))
            })
            .transpose()
    }

    fn u64_req(&self, key: &str) -> ParseResult<u64> {
        self.u64_opt(key)?
            .ok_or_else(|| bad(format!("missing {key}="), ""))
    }

    fn f64_req(&self, key: &str) -> ParseResult<f64> {
        let v = self
            .get(key)
            .ok_or_else(|| bad(format!("missing {key}="), ""))?;
        let parsed: f64 = v
            .parse()
            .map_err(|_| bad(format!("{key}= wants a number"), v))?;
        if !parsed.is_finite() || parsed < 0.0 {
            return Err(bad(format!("{key}= must be finite and non-negative"), v));
        }
        Ok(parsed)
    }

    /// `mode=strict` (false) or `mode=degraded` (true); strict by default.
    fn degraded_opt(&self) -> ParseResult<bool> {
        match self.get("mode") {
            None | Some("strict") => Ok(false),
            Some("degraded") => Ok(true),
            Some(v) => Err(bad("mode= must be strict or degraded", v)),
        }
    }

    /// Optional non-negative bound; `inf` is accepted (meaning: no bound).
    fn bound_opt(&self) -> ParseResult<Option<f64>> {
        let Some(v) = self.get("bound") else {
            return Ok(None);
        };
        let parsed: f64 = v.parse().map_err(|_| bad("bound= wants a number", v))?;
        if parsed.is_nan() || parsed < 0.0 {
            return Err(bad("bound= must be non-negative (inf allowed)", v));
        }
        Ok(Some(parsed))
    }
}

/// Parse one request line. Empty (or all-whitespace) lines are invalid —
/// the connection handler skips them before calling this.
pub fn parse(line: &str) -> ParseResult<Request> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    let Some((verb, rest)) = tokens.split_first() else {
        return Err(bad("empty request", ""));
    };
    let verb = verb.to_ascii_uppercase();
    let args = Args::parse(rest)?;
    match verb.as_str() {
        "PING" => Ok(Request::Ping),
        "HEALTH" => Ok(Request::Health),
        "STATS" | "METRICS" => Ok(Request::Stats),
        "EXACT" => Ok(Request::Exact {
            query: args.required_query()?,
            deadline_ms: args.u64_opt("deadline_ms")?,
            bound: args.bound_opt()?,
            degraded: args.degraded_opt()?,
        }),
        "KNN" => {
            let k = args
                .u64_req("k")?
                .try_into()
                .map_err(|_| bad("k= is too large", args.get("k").unwrap_or("")))?;
            Ok(Request::Knn {
                k,
                query: args.required_query()?,
                deadline_ms: args.u64_opt("deadline_ms")?,
                bound: args.bound_opt()?,
                degraded: args.degraded_opt()?,
            })
        }
        "RANGE" => Ok(Request::Range {
            epsilon: args.f64_req("eps")?,
            query: args.required_query()?,
            deadline_ms: args.u64_opt("deadline_ms")?,
            degraded: args.degraded_opt()?,
        }),
        "INGEST" => Ok(Request::Ingest {
            upto: args.u64_opt("upto")?,
        }),
        "BUILD" => {
            let start = args.u64_req("start")?;
            let end = args.u64_req("end")?;
            if end < start {
                return Err(bad(
                    "end= must be at least start=",
                    args.get("end").unwrap_or(""),
                ));
            }
            Ok(Request::Build {
                start,
                end,
                upto: args.u64_opt("upto")?,
            })
        }
        "SHARD-INFO" => Ok(Request::ShardInfo),
        "COMPACT" => Ok(Request::Compact),
        "GC" => Ok(Request::Gc),
        "QUIT" => Ok(Request::Quit),
        _ => Err(bad("unknown verb", &verb)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_query_verbs() {
        assert_eq!(parse("PING").unwrap(), Request::Ping);
        assert_eq!(parse("quit").unwrap(), Request::Quit);
        assert_eq!(
            parse("EXACT q=seed:7 deadline_ms=250").unwrap(),
            Request::Exact {
                query: QuerySpec::Seed(7),
                deadline_ms: Some(250),
                bound: None,
                degraded: false,
            }
        );
        assert_eq!(
            parse("KNN k=5 q=pos:12").unwrap(),
            Request::Knn {
                k: 5,
                query: QuerySpec::Pos(12),
                deadline_ms: None,
                bound: None,
                degraded: false,
            }
        );
        let r = parse("RANGE eps=1.5 q=v:0.5,-1,2.25").unwrap();
        assert_eq!(
            r,
            Request::Range {
                epsilon: 1.5,
                query: QuerySpec::Values(vec![0.5, -1.0, 2.25]),
                deadline_ms: None,
                degraded: false,
            }
        );
        assert_eq!(
            parse("INGEST upto=4000").unwrap(),
            Request::Ingest { upto: Some(4000) }
        );
        assert_eq!(parse("INGEST").unwrap(), Request::Ingest { upto: None });
    }

    #[test]
    fn parses_shard_verbs_and_bounds() {
        assert_eq!(parse("SHARD-INFO").unwrap(), Request::ShardInfo);
        assert_eq!(parse("shard-info").unwrap(), Request::ShardInfo);
        assert_eq!(
            parse("BUILD start=100 end=200 upto=150").unwrap(),
            Request::Build {
                start: 100,
                end: 200,
                upto: Some(150),
            }
        );
        assert_eq!(
            parse("BUILD start=0 end=50").unwrap(),
            Request::Build {
                start: 0,
                end: 50,
                upto: None,
            }
        );
        let r = parse("EXACT q=seed:1 bound=2.5").unwrap();
        assert_eq!(
            r,
            Request::Exact {
                query: QuerySpec::Seed(1),
                deadline_ms: None,
                bound: Some(2.5),
                degraded: false,
            }
        );
        // An explicit infinite bound round-trips (meaning: no bound).
        let r = parse("KNN k=2 q=seed:1 bound=inf").unwrap();
        let Request::Knn { bound, .. } = r else {
            panic!()
        };
        assert_eq!(bound, Some(f64::INFINITY));
    }

    #[test]
    fn parses_query_mode() {
        for (line, want) in [
            ("EXACT q=seed:1", false),
            ("EXACT q=seed:1 mode=strict", false),
            ("EXACT q=seed:1 mode=degraded", true),
        ] {
            let Request::Exact { degraded, .. } = parse(line).unwrap() else {
                panic!()
            };
            assert_eq!(degraded, want, "{line}");
        }
        let Request::Knn { degraded, .. } = parse("KNN k=2 q=seed:1 mode=degraded").unwrap() else {
            panic!()
        };
        assert!(degraded);
        let Request::Range { degraded, .. } = parse("RANGE eps=1 q=seed:1 mode=degraded").unwrap()
        else {
            panic!()
        };
        assert!(degraded);
        assert!(parse("EXACT q=seed:1 mode=yolo").is_err());
    }

    #[test]
    fn rejects_malformed_requests() {
        for line in [
            "",
            "FROB",
            "EXACT",
            "EXACT q=walrus:1",
            "KNN q=seed:1",
            "KNN k=abc q=seed:1",
            "RANGE q=seed:1",
            "RANGE eps=-1 q=seed:1",
            "RANGE eps=nan q=seed:1",
            "EXACT q=v:",
            "INGEST upto=many",
            "BUILD end=5",
            "BUILD start=10 end=5",
            "EXACT q=seed:1 bound=-2",
            "EXACT q=seed:1 bound=nan",
        ] {
            assert!(parse(line).is_err(), "should reject {line:?}");
        }
    }

    #[test]
    fn parse_errors_name_the_offending_token() {
        let e = parse("FROB x=1").unwrap_err();
        assert!(e.to_string().contains("FROB"), "{e}");
        let e = parse("EXACT q=walrus:1").unwrap_err();
        assert!(e.to_string().contains("walrus"), "{e}");
        let e = parse("KNN k=abc q=seed:1").unwrap_err();
        assert!(e.to_string().contains("abc"), "{e}");
        let e = parse("EXACT notkeyvalue").unwrap_err();
        assert!(e.to_string().contains("notkeyvalue"), "{e}");
    }

    #[test]
    fn oversized_tokens_are_truncated_in_errors() {
        let long = format!("EXACT {}", "x".repeat(100_000));
        let e = parse(&long).unwrap_err();
        let msg = e.to_string();
        assert!(
            msg.len() < 256,
            "reply must stay bounded: {} bytes",
            msg.len()
        );
        assert!(msg.contains("..."), "{msg}");
    }
}
