//! The server's metric set: one [`ServerMetrics`] per server process,
//! built on the lock-free instruments of [`coconut_storage::metrics`].
//!
//! Counters and histograms are updated on the request hot path (a handful
//! of relaxed atomics each); gauges derived from index state (covered
//! prefix, run count, compaction debt) and from sliding-window meters (QPS,
//! ingest rate) are refreshed lazily inside [`ServerMetrics::render`], so
//! an idle server pays nothing for them.

use std::sync::Arc;

use coconut_core::LsmCoconut;
use coconut_series::index::QueryStats;
use coconut_storage::metrics::{Counter, Gauge, Histogram, RateMeter, Registry};

/// Latency histogram bounds: 100 µs to ~105 s in ×2 steps — wide enough
/// for sub-millisecond in-memory hits and multi-second cold scans alike.
const LATENCY_START: f64 = 1e-4;
const LATENCY_FACTOR: f64 = 2.0;
const LATENCY_BUCKETS: usize = 20;

/// QPS / ingest-rate window (seconds); bounded by the meter's ring size.
const RATE_WINDOW_S: u64 = 10;

/// Leaf-fill histogram bounds: ten linear buckets over `(0, 1]`; leaves an
/// unsplittable key group forced beyond capacity land in `+Inf`.
const FILL_BUCKETS: [f64; 10] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

/// Per-level run-count gauges exported (`coconut_runs_level_0..`); the top
/// gauge absorbs every deeper level so the set stays fixed-size.
const LEVEL_GAUGES: usize = 8;

/// Every instrument the query server exports, with Prometheus rendering.
pub struct ServerMetrics {
    registry: Registry,
    /// Queries answered (any verb, success or failure).
    pub queries: Arc<Counter>,
    /// Queries that failed with a non-deadline error.
    pub errors: Arc<Counter>,
    /// Queries aborted by an expired per-request deadline.
    pub timeouts: Arc<Counter>,
    /// Connections rejected because the admission queue was full.
    pub rejected: Arc<Counter>,
    /// Connections closed by the server after the idle-read timeout.
    pub idle_disconnects: Arc<Counter>,
    /// End-to-end query latency in seconds.
    pub latency: Arc<Histogram>,
    /// Raw series fetched by SIMS scans, across all queries.
    pub records_fetched: Arc<Counter>,
    /// Leaf nodes visited while seeding approximate answers.
    pub leaves_visited: Arc<Counter>,
    /// Series added to the index by `INGEST` requests.
    pub ingested: Arc<Counter>,
    /// Events feeding the QPS gauge.
    pub query_meter: RateMeter,
    /// Events (one per ingested series) feeding the ingest-rate gauge.
    pub ingest_meter: RateMeter,
    qps: Arc<Gauge>,
    ingest_rate: Arc<Gauge>,
    p50: Arc<Gauge>,
    p99: Arc<Gauge>,
    covered: Arc<Gauge>,
    runs: Arc<Gauge>,
    debt: Arc<Gauge>,
    pinned_gc: Arc<Gauge>,
    disk: Arc<Gauge>,
    /// Per-leaf fill fractions across live runs; a *state* histogram,
    /// rebuilt from the index on every render rather than accumulated.
    leaf_fill: Arc<Histogram>,
    oversized_leaves: Arc<Gauge>,
    write_amp: Arc<Gauge>,
    space_amp: Arc<Gauge>,
    ingest_commits: Arc<Gauge>,
    runs_committed: Arc<Gauge>,
    runs_level: Vec<Arc<Gauge>>,
}

impl Default for ServerMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServerMetrics {
    /// Build the full metric set (registration order is render order).
    pub fn new() -> Self {
        let mut reg = Registry::new();
        let queries = reg.counter("coconut_queries_total", "Queries answered (all verbs).");
        let errors = reg.counter(
            "coconut_query_errors_total",
            "Queries failed with a non-deadline error.",
        );
        let timeouts = reg.counter(
            "coconut_query_timeouts_total",
            "Queries aborted by an expired per-request deadline.",
        );
        let rejected = reg.counter(
            "coconut_requests_rejected_total",
            "Connections rejected by the bounded admission queue.",
        );
        let idle_disconnects = reg.counter(
            "coconut_idle_disconnect_total",
            "Connections closed after the idle-read timeout.",
        );
        let latency = reg.histogram(
            "coconut_query_latency_seconds",
            "End-to-end query latency.",
            Histogram::exponential(LATENCY_START, LATENCY_FACTOR, LATENCY_BUCKETS),
        );
        let p50 = reg.gauge(
            "coconut_query_latency_p50_seconds",
            "Median query latency (estimated from the histogram).",
        );
        let p99 = reg.gauge(
            "coconut_query_latency_p99_seconds",
            "99th-percentile query latency (estimated from the histogram).",
        );
        let qps = reg.gauge(
            "coconut_qps",
            "Queries per second over the trailing window.",
        );
        let records_fetched = reg.counter(
            "coconut_records_fetched_total",
            "Raw series fetched by SIMS scans.",
        );
        let leaves_visited = reg.counter(
            "coconut_leaves_visited_total",
            "Leaf nodes visited while seeding approximate answers.",
        );
        let ingested = reg.counter(
            "coconut_series_ingested_total",
            "Series added to the index by INGEST requests.",
        );
        let ingest_rate = reg.gauge(
            "coconut_ingest_series_per_second",
            "Ingest throughput over the trailing window.",
        );
        let covered = reg.gauge(
            "coconut_covered_series",
            "End (exclusive) of the indexed raw-file prefix.",
        );
        let runs = reg.gauge("coconut_runs", "Live LSM runs (read amplification).");
        let debt = reg.gauge(
            "coconut_compaction_debt_bytes",
            "Index bytes not yet merged into the largest run.",
        );
        let pinned_gc = reg.gauge(
            "coconut_gc_pinned_runs",
            "Compacted-away runs kept on disk by live snapshots.",
        );
        let disk = reg.gauge("coconut_index_disk_bytes", "Total index bytes on disk.");
        let leaf_fill = reg.histogram(
            "coconut_leaf_fill",
            "Leaf occupancy (entries / leaf capacity) across live runs, \
             rebuilt at scrape time.",
            Histogram::new(&FILL_BUCKETS),
        );
        let oversized_leaves = reg.gauge(
            "coconut_oversized_leaves",
            "Leaves beyond capacity because identical keys cannot split.",
        );
        let write_amp = reg.gauge(
            "coconut_write_amp",
            "Entries written (ingested + rewritten by compaction) per \
             entry ingested, since this index instance opened.",
        );
        let space_amp = reg.gauge(
            "coconut_space_amp",
            "Index bytes on disk per byte referenced by the live run set \
             (garbage awaiting GC inflates it above 1).",
        );
        let ingest_commits = reg.gauge(
            "coconut_ingest_manifest_commits",
            "Manifest commits that acknowledged ingest batches (group \
             commit folds several runs into one).",
        );
        let runs_committed = reg.gauge(
            "coconut_ingest_runs_committed",
            "Ingest runs made durable across all manifest commits.",
        );
        let runs_level = (0..LEVEL_GAUGES)
            .map(|l| {
                reg.gauge(
                    &format!("coconut_runs_level_{l}"),
                    &format!(
                        "Live runs sized for level {l}{}.",
                        if l + 1 == LEVEL_GAUGES {
                            " or deeper"
                        } else {
                            ""
                        }
                    ),
                )
            })
            .collect();
        ServerMetrics {
            registry: reg,
            queries,
            errors,
            timeouts,
            rejected,
            idle_disconnects,
            latency,
            records_fetched,
            leaves_visited,
            ingested,
            query_meter: RateMeter::new(),
            ingest_meter: RateMeter::new(),
            qps,
            ingest_rate,
            p50,
            p99,
            covered,
            runs,
            debt,
            pinned_gc,
            disk,
            leaf_fill,
            oversized_leaves,
            write_amp,
            space_amp,
            ingest_commits,
            runs_committed,
            runs_level,
        }
    }

    /// Record one answered query: latency plus the scan's work counters.
    pub fn record_query(&self, seconds: f64, stats: &QueryStats) {
        self.queries.inc();
        self.query_meter.record();
        self.latency.observe(seconds);
        self.records_fetched.add(stats.records_fetched);
        self.leaves_visited.add(stats.leaves_visited);
    }

    /// Record a query failure; expired deadlines count separately so
    /// saturation (timeouts) is distinguishable from breakage (errors).
    pub fn record_failure(&self, is_deadline: bool) {
        if is_deadline {
            self.timeouts.inc();
        } else {
            self.errors.inc();
        }
    }

    /// Record `n` series committed by an ingest. The meter has no bulk
    /// add; for the batch sizes ingest sees (hundreds to tens of
    /// thousands) a loop of relaxed atomics is microseconds, at most once
    /// per batch.
    pub fn record_ingest(&self, n: u64) {
        self.ingested.add(n);
        for _ in 0..n {
            self.ingest_meter.record();
        }
    }

    /// Refresh only the meter- and histogram-derived gauges, then render.
    /// For a shard worker whose slice index has not been assigned yet: the
    /// index gauges stay at their last (or zero) values.
    pub fn render_without_index(&self) -> String {
        self.qps.set(self.query_meter.per_second(RATE_WINDOW_S));
        self.ingest_rate
            .set(self.ingest_meter.per_second(RATE_WINDOW_S));
        self.p50.set(self.latency.quantile(0.50));
        self.p99.set(self.latency.quantile(0.99));
        self.registry.render()
    }

    /// Refresh the derived gauges from the index and the sliding-window
    /// meters, then render everything as Prometheus text.
    pub fn render(&self, lsm: &LsmCoconut) -> String {
        self.qps.set(self.query_meter.per_second(RATE_WINDOW_S));
        self.ingest_rate
            .set(self.ingest_meter.per_second(RATE_WINDOW_S));
        self.p50.set(self.latency.quantile(0.50));
        self.p99.set(self.latency.quantile(0.99));
        let snap = lsm.snapshot();
        self.covered.set(snap.covered_end() as f64);
        self.runs.set(snap.run_count() as f64);
        self.debt.set(lsm.compaction_debt() as f64);
        self.pinned_gc.set(lsm.pinned_garbage() as f64);
        self.disk
            .set(coconut_series::index::SeriesIndex::disk_bytes(lsm) as f64);
        self.leaf_fill.reset();
        for fill in lsm.leaf_fill_fractions() {
            self.leaf_fill.observe(fill);
        }
        self.oversized_leaves.set(lsm.oversized_leaves() as f64);
        self.write_amp.set(lsm.write_amplification());
        self.space_amp.set(lsm.space_amplification());
        let ws = lsm.write_stats();
        self.ingest_commits.set(ws.ingest_commits as f64);
        self.runs_committed.set(ws.runs_committed as f64);
        let counts = lsm.level_run_counts();
        for (l, gauge) in self.runs_level.iter().enumerate() {
            let n = if l + 1 == LEVEL_GAUGES {
                // The top gauge absorbs every deeper level.
                counts.iter().skip(l).sum::<usize>()
            } else {
                counts.get(l).copied().unwrap_or(0)
            };
            gauge.set(n as f64);
        }
        self.registry.render()
    }
}

/// Per-shard instruments of a coordinator's client pool. The storage
/// registry has no label support, so each shard's series are distinguished
/// by name: `coconut_shard_<i>_requests_total` and friends.
pub struct ShardClientMetrics {
    /// Requests sent to this shard (including retried attempts' parents).
    pub requests: Arc<Counter>,
    /// Retry attempts after an I/O failure or refused connection.
    pub retries: Arc<Counter>,
    /// Requests abandoned after the retry budget was exhausted.
    pub unavailable: Arc<Counter>,
    /// Candidate answers this shard contributed to scatter-gather merges.
    pub candidates: Arc<Counter>,
    /// Requests currently being serviced by this shard (0 or 1: the client
    /// serializes requests per connection).
    pub in_flight: Arc<Gauge>,
}

impl ShardClientMetrics {
    /// Register this shard's instruments (as shard number `index`) in the
    /// coordinator's registry.
    pub fn new(reg: &mut Registry, index: usize) -> Self {
        ShardClientMetrics {
            requests: reg.counter(
                &format!("coconut_shard_{index}_requests_total"),
                &format!("Requests sent to shard {index}."),
            ),
            retries: reg.counter(
                &format!("coconut_shard_{index}_retries_total"),
                &format!("Retried attempts against shard {index}."),
            ),
            unavailable: reg.counter(
                &format!("coconut_shard_{index}_unavailable_total"),
                &format!("Requests abandoned after shard {index}'s retry budget."),
            ),
            candidates: reg.counter(
                &format!("coconut_shard_{index}_candidates_total"),
                &format!("Candidate answers shard {index} contributed."),
            ),
            in_flight: reg.gauge(
                &format!("coconut_shard_{index}_in_flight"),
                &format!("Requests currently in flight to shard {index}."),
            ),
        }
    }
}

/// The coordinator's metric set: cluster-level query counters plus one
/// [`ShardClientMetrics`] per shard, rendered from one registry.
pub struct CoordinatorMetrics {
    registry: Registry,
    /// Queries answered by the coordinator (any verb).
    pub queries: Arc<Counter>,
    /// Queries failed with a non-deadline, non-unavailable error.
    pub errors: Arc<Counter>,
    /// Queries aborted by an expired deadline.
    pub timeouts: Arc<Counter>,
    /// Queries that failed because a shard stayed unreachable.
    pub unavailable: Arc<Counter>,
    /// Degraded-mode queries answered with at least one slice missing.
    pub degraded: Arc<Counter>,
    /// Connections rejected by the admission queue.
    pub rejected: Arc<Counter>,
    /// Connections closed by the coordinator after the idle-read timeout.
    pub idle_disconnects: Arc<Counter>,
    /// End-to-end query latency in seconds (all shards' rounds included).
    pub latency: Arc<Histogram>,
    /// Per-shard client instruments, indexed by shard number.
    pub shards: Vec<Arc<ShardClientMetrics>>,
    p50: Arc<Gauge>,
    p99: Arc<Gauge>,
}

impl CoordinatorMetrics {
    /// Build the coordinator metric set for `shard_count` shards.
    pub fn new(shard_count: usize) -> Self {
        let mut reg = Registry::new();
        let queries = reg.counter(
            "coconut_coordinator_queries_total",
            "Queries answered by the coordinator.",
        );
        let errors = reg.counter(
            "coconut_coordinator_errors_total",
            "Coordinator queries failed with a non-deadline error.",
        );
        let timeouts = reg.counter(
            "coconut_coordinator_timeouts_total",
            "Coordinator queries aborted by an expired deadline.",
        );
        let unavailable = reg.counter(
            "coconut_coordinator_unavailable_total",
            "Coordinator queries that lost a shard past its retry budget.",
        );
        let degraded = reg.counter(
            "coconut_coordinator_degraded_total",
            "Degraded-mode queries answered with at least one slice missing.",
        );
        let rejected = reg.counter(
            "coconut_coordinator_rejected_total",
            "Connections rejected by the coordinator's admission queue.",
        );
        let idle_disconnects = reg.counter(
            "coconut_idle_disconnect_total",
            "Connections closed after the idle-read timeout.",
        );
        let latency = reg.histogram(
            "coconut_coordinator_latency_seconds",
            "End-to-end scatter-gather query latency.",
            Histogram::exponential(LATENCY_START, LATENCY_FACTOR, LATENCY_BUCKETS),
        );
        let p50 = reg.gauge(
            "coconut_coordinator_latency_p50_seconds",
            "Median coordinator latency (estimated from the histogram).",
        );
        let p99 = reg.gauge(
            "coconut_coordinator_latency_p99_seconds",
            "99th-percentile coordinator latency (estimated from the histogram).",
        );
        let shards = (0..shard_count)
            .map(|i| Arc::new(ShardClientMetrics::new(&mut reg, i)))
            .collect();
        CoordinatorMetrics {
            registry: reg,
            queries,
            errors,
            timeouts,
            unavailable,
            degraded,
            rejected,
            idle_disconnects,
            latency,
            shards,
            p50,
            p99,
        }
    }

    /// Record one answered scatter-gather query.
    pub fn record_query(&self, seconds: f64) {
        self.queries.inc();
        self.latency.observe(seconds);
    }

    /// Record a failed query, classified by error kind.
    pub fn record_failure(&self, e: &coconut_storage::Error) {
        if e.is_deadline() {
            self.timeouts.inc();
        } else if e.is_unavailable() {
            self.unavailable.inc();
        } else {
            self.errors.inc();
        }
    }

    /// Refresh the derived gauges and render everything as Prometheus text.
    pub fn render(&self) -> String {
        self.p50.set(self.latency.quantile(0.50));
        self.p99.set(self.latency.quantile(0.99));
        self.registry.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coordinator_metrics_render_per_shard_series() {
        let m = CoordinatorMetrics::new(2);
        m.record_query(0.002);
        m.record_failure(&coconut_storage::Error::unavailable("shard down"));
        m.shards[1].retries.inc();
        m.shards[1].in_flight.set(1.0);
        let text = m.render();
        for required in [
            "coconut_coordinator_queries_total 1",
            "coconut_coordinator_unavailable_total 1",
            "coconut_coordinator_latency_p99_seconds",
            "coconut_shard_0_requests_total 0",
            "coconut_shard_1_retries_total 1",
            "coconut_shard_1_in_flight 1",
        ] {
            assert!(text.contains(required), "missing {required} in:\n{text}");
        }
    }

    #[test]
    fn render_lists_required_metrics() {
        use coconut_core::{BuildOptions, IndexConfig, LsmCoconut};
        let dir = coconut_storage::TempDir::new("srv-metrics").unwrap();
        let lsm = LsmCoconut::new(
            IndexConfig::default_for_len(64),
            BuildOptions::default(),
            dir.path().join("i"),
        )
        .unwrap();
        let m = ServerMetrics::new();
        m.record_query(0.004, &QueryStats::default());
        m.record_failure(true);
        m.record_ingest(100);
        let text = m.render(&lsm);
        for required in [
            "coconut_qps",
            "coconut_query_latency_p50_seconds",
            "coconut_query_latency_p99_seconds",
            "coconut_query_latency_seconds_bucket",
            "coconut_records_fetched_total",
            "coconut_compaction_debt_bytes",
            "coconut_query_timeouts_total 1",
            "coconut_series_ingested_total 100",
            "coconut_leaf_fill_bucket",
            "coconut_oversized_leaves 0",
            "coconut_write_amp",
            "coconut_space_amp",
            "coconut_ingest_manifest_commits",
            "coconut_ingest_runs_committed",
            "coconut_runs_level_0",
            "coconut_runs_level_7",
        ] {
            assert!(text.contains(required), "missing {required} in:\n{text}");
        }
    }

    #[test]
    fn leaf_fill_histogram_tracks_index_state() {
        use coconut_core::{BuildOptions, IndexConfig, LsmCoconut};
        use coconut_series::dataset::{write_dataset, Dataset};
        use coconut_series::gen::RandomWalkGen;
        use std::sync::Arc as StdArc;

        let dir = coconut_storage::TempDir::new("srv-fill").unwrap();
        let stats = StdArc::new(coconut_storage::IoStats::new());
        let path = dir.path().join("d.ds");
        write_dataset(&path, &mut RandomWalkGen::new(5), 300, 64, &stats).unwrap();
        let ds = Dataset::open(&path, stats).unwrap();
        let mut config = IndexConfig::default_for_len(64);
        config.leaf_capacity = 32;
        let lsm = LsmCoconut::new(config, BuildOptions::default(), dir.path().join("i")).unwrap();
        lsm.ingest_upto(&ds, 300).unwrap();
        lsm.wait_for_compactions().unwrap();

        let m = ServerMetrics::new();
        let text = m.render(&lsm);
        let count: u64 = text
            .lines()
            .find_map(|l| l.strip_prefix("coconut_leaf_fill_count "))
            .expect("histogram count line")
            .parse()
            .unwrap();
        assert_eq!(count, lsm.leaf_fill_fractions().len() as u64);
        assert!(count > 0, "ingested index must report leaves:\n{text}");
        // The histogram is rebuilt, not accumulated: a second scrape of an
        // unchanged index reports the same count.
        let text2 = m.render(&lsm);
        assert!(
            text2.contains(&format!("coconut_leaf_fill_count {count}")),
            "scrape must not accumulate:\n{text2}"
        );
    }
}
