//! Request execution: each query pins an LSM [`Snapshot`] and runs
//! lock-free against it under a cooperative [`Deadline`].
//!
//! [`Snapshot`]: coconut_core::Snapshot
//!
//! Every query response carries `covered=<n> seq=<s>` — the pinned
//! snapshot's prefix and manifest sequence — so a client checking answers
//! against a brute-force oracle knows *exactly* which prefix of the dataset
//! the server answered over, even while ingest is advancing concurrently.

use std::sync::Arc;
use std::time::{Duration, Instant};

use coconut_core::LsmCoconut;
use coconut_series::dataset::Dataset;
use coconut_series::distance::znormalize;
use coconut_series::gen::{Generator, RandomWalkGen};
use coconut_series::index::Answer;
use coconut_series::Value;
use coconut_storage::{Deadline, Error, Result};

use crate::metrics::ServerMetrics;
use crate::protocol::{parse, QuerySpec, Request};

/// The result of executing one request line.
pub struct Outcome {
    /// The reply to write back (always newline-terminated by the caller).
    pub reply: String,
    /// True when the connection should close after the reply (QUIT).
    pub close: bool,
}

/// Shared request executor: one per server, used from every worker thread.
pub struct Engine {
    lsm: Arc<LsmCoconut>,
    dataset: Dataset,
    metrics: Arc<ServerMetrics>,
    default_deadline: Option<Duration>,
}

impl Engine {
    /// Build an engine over an open index and its dataset.
    /// `default_deadline` applies to queries that don't set `deadline_ms=`.
    pub fn new(lsm: Arc<LsmCoconut>, dataset: Dataset, default_deadline: Option<Duration>) -> Self {
        Engine {
            lsm,
            dataset,
            metrics: Arc::new(ServerMetrics::new()),
            default_deadline,
        }
    }

    /// The engine's metric set (shared with the admission layer).
    pub fn metrics(&self) -> &Arc<ServerMetrics> {
        &self.metrics
    }

    /// The underlying index (tests and the load generator use it to settle
    /// compactions or inspect state).
    pub fn lsm(&self) -> &Arc<LsmCoconut> {
        &self.lsm
    }

    /// Render the Prometheus metrics text.
    pub fn metrics_text(&self) -> String {
        self.metrics.render(&self.lsm)
    }

    /// One-line health summary.
    pub fn health_line(&self) -> String {
        let snap = self.lsm.snapshot();
        format!(
            "OK healthy covered={} runs={} seq={}",
            snap.covered_end(),
            snap.run_count(),
            snap.seq()
        )
    }

    /// Execute one request line and format the reply.
    pub fn execute_line(&self, line: &str) -> Outcome {
        let request = match parse(line) {
            Ok(r) => r,
            Err(e) => {
                self.metrics.record_failure(false);
                return Outcome {
                    reply: err_reply(&e),
                    close: false,
                };
            }
        };
        if matches!(request, Request::Quit) {
            return Outcome {
                reply: "OK bye".into(),
                close: true,
            };
        }
        let reply = match self.execute(&request) {
            Ok(reply) => reply,
            Err(e) => {
                self.metrics.record_failure(e.is_deadline());
                err_reply(&e)
            }
        };
        Outcome {
            reply,
            close: false,
        }
    }

    fn execute(&self, request: &Request) -> Result<String> {
        match request {
            Request::Ping => Ok("OK pong".into()),
            Request::Health => Ok(self.health_line()),
            Request::Stats => Ok(format!("{}# EOF", self.metrics_text())),
            Request::Exact { query, deadline_ms } => {
                let deadline = self.deadline(*deadline_ms);
                let snap = self.lsm.snapshot();
                let q = self.resolve_query(query)?;
                let started = Instant::now();
                let (answer, stats) = snap.exact(&q, deadline)?;
                self.metrics
                    .record_query(started.elapsed().as_secs_f64(), &stats);
                Ok(format!(
                    "OK exact {} covered={} seq={} fetched={}",
                    fmt_answer(&answer),
                    snap.covered_end(),
                    snap.seq(),
                    stats.records_fetched
                ))
            }
            Request::Knn {
                k,
                query,
                deadline_ms,
            } => {
                let deadline = self.deadline(*deadline_ms);
                let snap = self.lsm.snapshot();
                let q = self.resolve_query(query)?;
                let started = Instant::now();
                let (answers, stats) = snap.exact_knn(&q, *k, deadline)?;
                self.metrics
                    .record_query(started.elapsed().as_secs_f64(), &stats);
                Ok(format!(
                    "OK knn k={} covered={} seq={} hits={}",
                    k,
                    snap.covered_end(),
                    snap.seq(),
                    fmt_hits(&answers)
                ))
            }
            Request::Range {
                epsilon,
                query,
                deadline_ms,
            } => {
                let deadline = self.deadline(*deadline_ms);
                let snap = self.lsm.snapshot();
                let q = self.resolve_query(query)?;
                let started = Instant::now();
                let (answers, stats) = snap.exact_range(&q, *epsilon, deadline)?;
                self.metrics
                    .record_query(started.elapsed().as_secs_f64(), &stats);
                Ok(format!(
                    "OK range eps={} covered={} seq={} hits={}",
                    epsilon,
                    snap.covered_end(),
                    snap.seq(),
                    fmt_hits(&answers)
                ))
            }
            Request::Ingest { upto } => {
                let upto = upto.unwrap_or_else(|| self.dataset.len());
                let before = self.lsm.covered_end();
                self.lsm.ingest_upto(&self.dataset, upto)?;
                let after = self.lsm.covered_end();
                self.metrics.record_ingest(after.saturating_sub(before));
                Ok(format!(
                    "OK ingest covered={} added={} runs={}",
                    after,
                    after.saturating_sub(before),
                    self.lsm.run_count()
                ))
            }
            Request::Compact => {
                self.lsm.compact()?;
                Ok(format!("OK compact runs={}", self.lsm.run_count()))
            }
            Request::Gc => Ok(format!("OK gc removed={}", self.lsm.collect_garbage())),
            Request::Quit => Ok("OK bye".into()),
        }
    }

    fn deadline(&self, requested_ms: Option<u64>) -> Deadline {
        match requested_ms {
            Some(ms) => Deadline::after(Duration::from_millis(ms)),
            None => self
                .default_deadline
                .map_or(Deadline::NONE, Deadline::after),
        }
    }

    /// Materialize the query vector named by the request.
    fn resolve_query(&self, spec: &QuerySpec) -> Result<Vec<Value>> {
        let len = self.dataset.series_len();
        match spec {
            QuerySpec::Seed(seed) => {
                let mut q = RandomWalkGen::new(*seed).generate(len);
                znormalize(&mut q);
                Ok(q)
            }
            QuerySpec::Pos(pos) => {
                if *pos >= self.dataset.len() {
                    return Err(Error::invalid(format!(
                        "q=pos:{pos} is beyond the dataset ({} series)",
                        self.dataset.len()
                    )));
                }
                self.dataset.get(*pos)
            }
            QuerySpec::Values(values) => {
                if values.len() != len {
                    return Err(Error::invalid(format!(
                        "q=v: has {} values but the dataset's series length is {len}",
                        values.len()
                    )));
                }
                Ok(values.clone())
            }
        }
    }
}

/// Map an [`Error`] to its wire category (`ERR <category>: <message>`).
fn err_reply(e: &Error) -> String {
    let category = match e {
        Error::Io(_) => "io",
        Error::Corrupt(_) => "corrupt",
        Error::InvalidArg(_) => "invalid",
        Error::Deadline(_) => "deadline",
    };
    // Keep the reply one line no matter what the message holds.
    let msg: String = e
        .to_string()
        .chars()
        .map(|c| if c == '\n' || c == '\r' { ' ' } else { c })
        .collect();
    format!("ERR {category}: {msg}")
}

fn fmt_answer(a: &Answer) -> String {
    if a.is_some() {
        format!("pos={} dist={:.6}", a.pos, a.dist)
    } else {
        "pos=none dist=inf".into()
    }
}

fn fmt_hits(answers: &[Answer]) -> String {
    if answers.is_empty() {
        return "none".into();
    }
    answers
        .iter()
        .map(|a| format!("{}:{:.6}", a.pos, a.dist))
        .collect::<Vec<_>>()
        .join(",")
}
