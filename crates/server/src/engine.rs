//! Request execution: each query pins an LSM [`Snapshot`] and runs
//! lock-free against it under a cooperative [`Deadline`].
//!
//! [`Snapshot`]: coconut_core::Snapshot
//!
//! Every query response carries `covered=<n> seq=<s>` — the pinned
//! snapshot's prefix and manifest sequence — so a client checking answers
//! against a brute-force oracle knows *exactly* which prefix of the dataset
//! the server answered over, even while ingest is advancing concurrently.
//!
//! One [`Engine`] serves two deployment shapes behind the same protocol:
//!
//! * **whole-dataset mode** ([`Engine::new`]) — the classic single-node
//!   server over an open index;
//! * **shard-worker mode** ([`Engine::new_shard`]) — the index over one
//!   key-range slice may not exist yet; the coordinator's `BUILD
//!   start=<s> end=<e>` request assigns the slice (creating the slice
//!   index with its base at `s`, or verifying a recovered one) before any
//!   query can run. `EXACT`/`KNN` accept the coordinator's `bound=` and
//!   return only candidates that could still enter the global answer.
//!
//! Distances in replies are formatted with Rust's shortest-roundtrip `f64`
//! `Display`, so a coordinator parsing them back recovers the *bit-exact*
//! value — the property the distributed fabric's bit-identity guarantee
//! rests on.

use std::ops::Range;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use coconut_core::{BuildOptions, IndexConfig, LsmCoconut, ShardInfo};
use coconut_series::dataset::Dataset;
use coconut_series::distance::znormalize;
use coconut_series::gen::{Generator, RandomWalkGen};
use coconut_series::index::Answer;
use coconut_series::Value;
use coconut_storage::{Deadline, Error, Result};
use parking_lot::RwLock;

use crate::metrics::ServerMetrics;
use crate::protocol::{parse, QuerySpec, Request};

/// The result of executing one request line.
pub struct Outcome {
    /// The reply to write back (always newline-terminated by the caller).
    pub reply: String,
    /// True when the connection should close after the reply (QUIT).
    pub close: bool,
}

/// What the connection layer needs from a request executor. [`Engine`]
/// (single node or shard worker) and `CoordinatorEngine` both implement
/// this, so one listener/pool serves every deployment shape.
pub trait Handler: Send + Sync + 'static {
    /// Execute one request line and format the reply.
    fn execute_line(&self, line: &str) -> Outcome;
    /// Render the Prometheus metrics text (the `GET /metrics` body).
    fn metrics_text(&self) -> String;
    /// One-line health summary (the `GET /health` body).
    fn health_line(&self) -> String;
    /// Called when the admission queue refused a connection.
    fn on_rejected(&self);
    /// Called when a connection is closed by the idle-read timeout.
    fn on_idle_disconnect(&self) {}
}

/// The index an engine executes against.
enum Slot {
    /// Whole-dataset mode: the index exists for the engine's lifetime.
    Fixed(Arc<LsmCoconut>),
    /// Shard-worker mode: the slice index is created (or re-verified) by
    /// the first `BUILD` request.
    Shard(ShardSlot),
}

/// Deferred state of a shard worker's slice index.
struct ShardSlot {
    index_dir: PathBuf,
    config: IndexConfig,
    opts: BuildOptions,
    state: RwLock<Option<ShardState>>,
}

struct ShardState {
    lsm: Arc<LsmCoconut>,
    range: Range<u64>,
}

/// Shared request executor: one per server, used from every worker thread.
pub struct Engine {
    dataset: Dataset,
    metrics: Arc<ServerMetrics>,
    default_deadline: Option<Duration>,
    slot: Slot,
}

impl Engine {
    /// Build a whole-dataset engine over an open index.
    /// `default_deadline` applies to queries that don't set `deadline_ms=`.
    pub fn new(lsm: Arc<LsmCoconut>, dataset: Dataset, default_deadline: Option<Duration>) -> Self {
        Engine {
            dataset,
            metrics: Arc::new(ServerMetrics::new()),
            default_deadline,
            slot: Slot::Fixed(lsm),
        }
    }

    /// Build a shard-worker engine. The slice index in `index_dir` is
    /// created by the first `BUILD start=<s> end=<e>` request (with
    /// `config`/`opts`); pass `recovered` when the directory already holds
    /// an index recovered from a previous process — its manifest base is
    /// the slice start, and the provisional slice end is its covered
    /// prefix until a `BUILD` re-pins the assignment.
    pub fn new_shard(
        dataset: Dataset,
        index_dir: impl Into<PathBuf>,
        config: IndexConfig,
        opts: BuildOptions,
        recovered: Option<Arc<LsmCoconut>>,
        default_deadline: Option<Duration>,
    ) -> Self {
        let state = recovered.map(|lsm| {
            let range = lsm.base()..lsm.covered_end().max(lsm.base());
            ShardState { lsm, range }
        });
        Engine {
            dataset,
            metrics: Arc::new(ServerMetrics::new()),
            default_deadline,
            slot: Slot::Shard(ShardSlot {
                index_dir: index_dir.into(),
                config,
                opts,
                state: RwLock::new(state),
            }),
        }
    }

    /// The engine's metric set (shared with the admission layer).
    pub fn metrics(&self) -> &Arc<ServerMetrics> {
        &self.metrics
    }

    /// The underlying index (tests and the load generator use it to settle
    /// compactions or inspect state).
    ///
    /// # Panics
    ///
    /// Panics on a shard-worker engine, whose index is owned by the
    /// deferred slot; use the `SHARD-INFO` verb instead.
    pub fn lsm(&self) -> &Arc<LsmCoconut> {
        match &self.slot {
            Slot::Fixed(lsm) => lsm,
            Slot::Shard(_) => panic!("Engine::lsm() is not available in shard-worker mode"),
        }
    }

    /// The live index, if any: the fixed one, or the shard slot's current
    /// slice index.
    fn current(&self) -> Result<Arc<LsmCoconut>> {
        match &self.slot {
            Slot::Fixed(lsm) => Ok(Arc::clone(lsm)),
            Slot::Shard(slot) => slot
                .state
                .read()
                .as_ref()
                .map(|s| Arc::clone(&s.lsm))
                .ok_or_else(|| {
                    Error::invalid("shard has no assigned slice yet; send BUILD start=<s> end=<e>")
                }),
        }
    }

    /// Render the Prometheus metrics text.
    pub fn metrics_text(&self) -> String {
        match self.current() {
            Ok(lsm) => self.metrics.render(&lsm),
            Err(_) => self.metrics.render_without_index(),
        }
    }

    /// One-line health summary.
    pub fn health_line(&self) -> String {
        match self.current() {
            Ok(lsm) => {
                let snap = lsm.snapshot();
                let levels: Vec<String> = lsm
                    .level_run_counts()
                    .iter()
                    .map(|n| n.to_string())
                    .collect();
                format!(
                    "OK healthy covered={} runs={} seq={} compaction={} \
                     write_amp={:.2} levels={}",
                    snap.covered_end(),
                    snap.run_count(),
                    snap.seq(),
                    lsm.compaction_kind(),
                    lsm.write_amplification(),
                    if levels.is_empty() {
                        "-".to_string()
                    } else {
                        levels.join("/")
                    }
                )
            }
            Err(_) => "OK healthy unassigned covered=0 runs=0 seq=0".into(),
        }
    }

    /// Execute one request line and format the reply.
    pub fn execute_line(&self, line: &str) -> Outcome {
        let request = match parse(line) {
            Ok(r) => r,
            Err(e) => {
                self.metrics.record_failure(false);
                return Outcome {
                    reply: parse_err_reply(&e),
                    close: false,
                };
            }
        };
        if matches!(request, Request::Quit) {
            return Outcome {
                reply: "OK bye".into(),
                close: true,
            };
        }
        let reply = match self.execute(&request) {
            Ok(reply) => reply,
            Err(e) => {
                self.metrics.record_failure(e.is_deadline());
                err_reply(&e)
            }
        };
        Outcome {
            reply,
            close: false,
        }
    }

    fn execute(&self, request: &Request) -> Result<String> {
        match request {
            Request::Ping => Ok("OK pong".into()),
            Request::Health => Ok(self.health_line()),
            Request::Stats => Ok(format!("{}# EOF", self.metrics_text())),
            Request::Exact {
                query,
                deadline_ms,
                bound,
                // A single node (or one shard's slice) has no shards to
                // lose; mode=degraded is accepted but never degrades here.
                degraded: _,
            } => {
                let deadline = self.deadline(*deadline_ms);
                let snap = self.current()?.snapshot();
                let q = resolve_query(&self.dataset, query)?;
                let started = Instant::now();
                let (answer, stats) =
                    snap.exact_bounded(&q, bound.unwrap_or(f64::INFINITY), deadline)?;
                self.metrics
                    .record_query(started.elapsed().as_secs_f64(), &stats);
                Ok(format!(
                    "OK exact {} covered={} seq={} fetched={}",
                    fmt_answer(&answer),
                    snap.covered_end(),
                    snap.seq(),
                    stats.records_fetched
                ))
            }
            Request::Knn {
                k,
                query,
                deadline_ms,
                bound,
                degraded: _,
            } => {
                let deadline = self.deadline(*deadline_ms);
                let snap = self.current()?.snapshot();
                let q = resolve_query(&self.dataset, query)?;
                let started = Instant::now();
                let (answers, stats) =
                    snap.exact_knn_bounded(&q, *k, bound.unwrap_or(f64::INFINITY), deadline)?;
                self.metrics
                    .record_query(started.elapsed().as_secs_f64(), &stats);
                Ok(format!(
                    "OK knn k={} covered={} seq={} hits={}",
                    k,
                    snap.covered_end(),
                    snap.seq(),
                    fmt_hits(&answers)
                ))
            }
            Request::Range {
                epsilon,
                query,
                deadline_ms,
                degraded: _,
            } => {
                let deadline = self.deadline(*deadline_ms);
                let snap = self.current()?.snapshot();
                let q = resolve_query(&self.dataset, query)?;
                let started = Instant::now();
                let (answers, stats) = snap.exact_range(&q, *epsilon, deadline)?;
                self.metrics
                    .record_query(started.elapsed().as_secs_f64(), &stats);
                Ok(format!(
                    "OK range eps={} covered={} seq={} hits={}",
                    epsilon,
                    snap.covered_end(),
                    snap.seq(),
                    fmt_hits(&answers)
                ))
            }
            Request::Ingest { upto } => {
                let lsm = self.current()?;
                let upto = upto.unwrap_or_else(|| self.dataset.len());
                let before = lsm.covered_end();
                lsm.ingest_upto(&self.dataset, upto)?;
                let after = lsm.covered_end();
                self.metrics.record_ingest(after.saturating_sub(before));
                Ok(format!(
                    "OK ingest covered={} added={} runs={}",
                    after,
                    after.saturating_sub(before),
                    lsm.run_count()
                ))
            }
            Request::Build { start, end, upto } => {
                let info = self.build(*start, *end, *upto)?;
                Ok(format!("OK build {}", fmt_shard_info(&info)))
            }
            Request::ShardInfo => {
                let info = self.shard_info()?;
                Ok(format!("OK shard-info {}", fmt_shard_info(&info)))
            }
            Request::Compact => {
                let lsm = self.current()?;
                lsm.compact()?;
                Ok(format!("OK compact runs={}", lsm.run_count()))
            }
            Request::Gc => Ok(format!(
                "OK gc removed={}",
                self.current()?.collect_garbage()
            )),
            Request::Quit => Ok("OK bye".into()),
        }
    }

    /// The shard's assigned slice and ingest progress. In whole-dataset
    /// mode the "slice" is the entire dataset.
    pub fn shard_info(&self) -> Result<ShardInfo> {
        let range = match &self.slot {
            Slot::Fixed(_) => 0..self.dataset.len(),
            Slot::Shard(slot) => {
                let state = slot.state.read();
                let state = state.as_ref().ok_or_else(|| {
                    Error::invalid("shard has no assigned slice yet; send BUILD start=<s> end=<e>")
                })?;
                state.range.clone()
            }
        };
        let snap = self.current()?.snapshot();
        Ok(ShardInfo {
            start: range.start,
            end: range.end,
            covered_end: snap.covered_end(),
            seq: snap.seq(),
            runs: snap.run_count() as u64,
        })
    }

    /// Assign (or re-verify) the slice `start..end` and index it up to
    /// `upto` (clamped into the slice; `None` = the whole slice).
    fn build(&self, start: u64, end: u64, upto: Option<u64>) -> Result<ShardInfo> {
        let (lsm, range) = match &self.slot {
            Slot::Fixed(lsm) => {
                if start != 0 {
                    return Err(Error::invalid(format!(
                        "this server owns the whole dataset (slice 0..{}); \
                         BUILD start={start} does not match",
                        self.dataset.len()
                    )));
                }
                (Arc::clone(lsm), 0..end.min(self.dataset.len()))
            }
            Slot::Shard(slot) => {
                let mut state = slot.state.write();
                match state.as_mut() {
                    Some(s) => {
                        if s.range.start != start {
                            return Err(Error::invalid(format!(
                                "shard slice starts at {} but BUILD asked for start={start}; \
                                 a slice's base is fixed at creation",
                                s.range.start
                            )));
                        }
                        // Re-pin the provisional end a recovery guessed.
                        s.range.end = end.max(s.lsm.covered_end());
                        (Arc::clone(&s.lsm), s.range.clone())
                    }
                    None => {
                        let lsm = self.open_or_create_slice(slot, start)?;
                        let range = start..end;
                        *state = Some(ShardState {
                            lsm: Arc::clone(&lsm),
                            range: range.clone(),
                        });
                        (lsm, range)
                    }
                }
            }
        };
        let upto = upto.unwrap_or(range.end).clamp(range.start, range.end);
        let before = lsm.covered_end();
        lsm.ingest_upto(&self.dataset, upto)?;
        self.metrics
            .record_ingest(lsm.covered_end().saturating_sub(before));
        self.shard_info()
    }

    /// Recover the slice index from disk (verifying its base) or create a
    /// fresh one based at `start`.
    fn open_or_create_slice(&self, slot: &ShardSlot, start: u64) -> Result<Arc<LsmCoconut>> {
        let manifest = coconut_core::manifest::Manifest::path_in(&slot.index_dir);
        let lsm = if manifest.exists() {
            let lsm = LsmCoconut::open(&slot.index_dir, &self.dataset, slot.opts.clone())?;
            if lsm.base() != start {
                return Err(Error::invalid(format!(
                    "recovered slice index in {} is based at {} but BUILD asked \
                     for start={start}",
                    slot.index_dir.display(),
                    lsm.base()
                )));
            }
            lsm
        } else {
            LsmCoconut::new_based(slot.config, slot.opts.clone(), &slot.index_dir, start)?
        };
        Ok(Arc::new(lsm))
    }

    fn deadline(&self, requested_ms: Option<u64>) -> Deadline {
        match requested_ms {
            Some(ms) => Deadline::after(Duration::from_millis(ms)),
            None => self
                .default_deadline
                .map_or(Deadline::NONE, Deadline::after),
        }
    }
}

impl Handler for Engine {
    fn execute_line(&self, line: &str) -> Outcome {
        Engine::execute_line(self, line)
    }

    fn metrics_text(&self) -> String {
        Engine::metrics_text(self)
    }

    fn health_line(&self) -> String {
        Engine::health_line(self)
    }

    fn on_rejected(&self) {
        self.metrics.rejected.inc();
    }

    fn on_idle_disconnect(&self) {
        self.metrics.idle_disconnects.inc();
    }
}

/// Materialize the query vector named by a request against `dataset`.
pub(crate) fn resolve_query(dataset: &Dataset, spec: &QuerySpec) -> Result<Vec<Value>> {
    let len = dataset.series_len();
    match spec {
        QuerySpec::Seed(seed) => {
            let mut q = RandomWalkGen::new(*seed).generate(len);
            znormalize(&mut q);
            Ok(q)
        }
        QuerySpec::Pos(pos) => {
            if *pos >= dataset.len() {
                return Err(Error::invalid(format!(
                    "q=pos:{pos} is beyond the dataset ({} series)",
                    dataset.len()
                )));
            }
            dataset.get(*pos)
        }
        QuerySpec::Values(values) => {
            if values.len() != len {
                return Err(Error::invalid(format!(
                    "q=v: has {} values but the dataset's series length is {len}",
                    values.len()
                )));
            }
            Ok(values.clone())
        }
    }
}

/// Map an [`Error`] to its wire category (`ERR <category>: <message>`).
pub(crate) fn err_reply(e: &Error) -> String {
    let category = match e {
        Error::Io(_) => "io",
        Error::Corrupt(_) => "corrupt",
        Error::InvalidArg(_) => "invalid",
        Error::Deadline(_) => "deadline",
        Error::Unavailable(_) => "unavailable",
    };
    format!("ERR {category}: {}", one_line(&e.to_string()))
}

/// Format a [`crate::protocol::ParseError`] as its wire reply.
pub(crate) fn parse_err_reply(e: &crate::protocol::ParseError) -> String {
    format!("ERR parse: {}", one_line(&e.to_string()))
}

/// Keep a reply one line no matter what the message holds.
fn one_line(msg: &str) -> String {
    msg.chars()
        .map(|c| if c == '\n' || c == '\r' { ' ' } else { c })
        .collect()
}

/// Format an answer with shortest-roundtrip `f64` precision: parsing the
/// printed distance back recovers the identical bits.
pub(crate) fn fmt_answer(a: &Answer) -> String {
    if a.is_some() {
        format!("pos={} dist={}", a.pos, a.dist)
    } else {
        "pos=none dist=inf".into()
    }
}

/// Format a hit list as `pos:dist,...` (shortest-roundtrip distances), or
/// `none` when empty.
pub(crate) fn fmt_hits(answers: &[Answer]) -> String {
    if answers.is_empty() {
        return "none".into();
    }
    answers
        .iter()
        .map(|a| format!("{}:{}", a.pos, a.dist))
        .collect::<Vec<_>>()
        .join(",")
}

/// Serialize a [`ShardInfo`] as its wire fields.
pub(crate) fn fmt_shard_info(info: &ShardInfo) -> String {
    format!(
        "start={} end={} covered={} seq={} runs={}",
        info.start, info.end, info.covered_end, info.seq, info.runs
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances_round_trip_bit_exactly() {
        // The shortest-roundtrip property the distributed fabric relies on.
        for bits in [
            0x3FF0000000000001u64, // 1.0 + 1 ulp
            0x400921FB54442D18,    // pi
            0x0000000000000001,    // smallest subnormal
            0x7FEFFFFFFFFFFFFF,    // f64::MAX
        ] {
            let d = f64::from_bits(bits);
            let a = Answer { pos: 7, dist: d };
            let printed = fmt_answer(&a);
            let parsed: f64 = printed
                .split("dist=")
                .nth(1)
                .unwrap()
                .parse()
                .expect("reply distance parses");
            assert_eq!(parsed.to_bits(), bits, "{printed}");
        }
        assert_eq!(fmt_answer(&Answer::none()), "pos=none dist=inf");
        assert!("inf".parse::<f64>().unwrap().is_infinite());
    }
}
