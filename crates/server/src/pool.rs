//! The worker pool and per-connection I/O.
//!
//! Accepted connections go through a **bounded admission queue**
//! ([`std::sync::mpsc::sync_channel`]): when every worker is busy and the
//! queue is full, the connection is refused immediately with
//! `ERR busy: ...` instead of piling up latency — the open-loop load
//! experiment counts these rejections rather than letting them distort
//! tail latency.
//!
//! Workers speak the line protocol of [`crate::protocol`], and also answer
//! minimal HTTP `GET`s (`/metrics`, `/health`) so `curl` and Prometheus
//! scrapers work against the same port. Reads poll with a short timeout so
//! a worker parked on an idle connection still notices server shutdown.
//! An optional **idle-read timeout** closes connections that send nothing
//! for too long (counted by `coconut_idle_disconnect_total` via
//! [`Handler::on_idle_disconnect`]), so abandoned clients cannot pin
//! worker threads forever.
//!
//! The pool is generic over the request [`Handler`], so the same
//! connection machinery serves a single-node [`Engine`], a shard worker,
//! and the coordinator.
//!
//! Fault injection (chaos tests): the `server.read` and `server.write`
//! [`coconut_storage::fault`] sites fire on this module's socket
//! operations; either one dropping simulates a connection reset, which
//! clients must survive via reconnect-and-retry.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use crate::engine::{Engine, Handler};

/// How often a blocked read wakes to re-check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(200);

/// Upper bound on one request line (a `q=v:` vector of a few thousand
/// floats fits comfortably); longer lines are refused with a typed
/// `ERR parse` before the connection closes.
const MAX_LINE_BYTES: usize = 1 << 20;

/// A fixed set of worker threads fed connections through a bounded queue.
pub struct Pool<H: Handler = Engine> {
    tx: Mutex<Option<SyncSender<TcpStream>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    _marker: std::marker::PhantomData<fn() -> H>,
}

impl<H: Handler> Pool<H> {
    /// Spawn `workers` threads sharing an admission queue of `queue`
    /// waiting connections (beyond the ones being served).
    /// `idle_timeout` (when set) closes connections that send no bytes for
    /// that long; `None` keeps idle connections open indefinitely.
    pub fn new(
        handler: Arc<H>,
        workers: usize,
        queue: usize,
        idle_timeout: Option<Duration>,
        shutdown: Arc<AtomicBool>,
    ) -> Pool<H> {
        let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(queue.max(1));
        let rx = Arc::new(Mutex::new(rx));
        // Failing to spawn a worker at startup (OS thread limit) leaves
        // nothing to serve with — panicking out of `new` is the only
        // honest outcome, hence the escape hatch.
        #[allow(clippy::expect_used)]
        let workers = (0..workers.max(1))
            .map(|i| {
                let handler = Arc::clone(&handler);
                let rx = Arc::clone(&rx);
                let shutdown = Arc::clone(&shutdown);
                std::thread::Builder::new()
                    .name(format!("coconut-serve-{i}"))
                    .spawn(move || worker_loop(handler, rx, idle_timeout, shutdown))
                    .expect("spawning a server worker thread")
            })
            .collect();
        Pool {
            tx: Mutex::new(Some(tx)),
            workers: Mutex::new(workers),
            _marker: std::marker::PhantomData,
        }
    }

    /// Hand a connection to the pool. Returns `false` (connection refused,
    /// `ERR busy` already written) when the admission queue is full.
    pub fn dispatch(&self, stream: TcpStream) -> bool {
        let tx = match self.tx.lock().clone() {
            Some(tx) => tx,
            None => return false,
        };
        match tx.try_send(stream) {
            Ok(()) => true,
            Err(TrySendError::Full(mut stream)) | Err(TrySendError::Disconnected(mut stream)) => {
                let _ = stream.write_all(b"ERR busy: admission queue full\n");
                let _ = stream.shutdown(std::net::Shutdown::Both);
                false
            }
        }
    }

    /// Close the queue and join every worker. Idempotent.
    pub fn join(&self) {
        drop(self.tx.lock().take());
        let workers: Vec<_> = self.workers.lock().drain(..).collect();
        for w in workers {
            let _ = w.join();
        }
    }
}

fn worker_loop<H: Handler>(
    handler: Arc<H>,
    rx: Arc<Mutex<Receiver<TcpStream>>>,
    idle_timeout: Option<Duration>,
    shutdown: Arc<AtomicBool>,
) {
    loop {
        // Hold the receiver lock only while waiting for a connection.
        let conn = {
            let rx = rx.lock();
            rx.recv_timeout(POLL_INTERVAL)
        };
        match conn {
            Ok(stream) => handle_connection(&*handler, stream, idle_timeout, &shutdown),
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                if shutdown.load(Ordering::Relaxed) {
                    return;
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// One read step of [`LineReader::next_line`].
enum Next {
    /// A complete request line (terminator stripped).
    Line(String),
    /// The line grew past [`MAX_LINE_BYTES`] without a newline; the caller
    /// replies with a typed parse error and closes.
    Oversized,
    /// Nothing arrived for the idle-read timeout; the caller counts the
    /// idle disconnect and closes.
    Idle,
    /// EOF, shutdown, or a fatal read error.
    Closed,
}

/// A line reader over a polling (read-timeout) stream that survives
/// partial reads and re-checks `shutdown` between polls.
struct LineReader<'a> {
    stream: &'a TcpStream,
    buf: Vec<u8>,
    /// Bytes read but not yet consumed as lines.
    pending: Vec<u8>,
    /// Close the connection when no bytes arrive for this long.
    idle_timeout: Option<Duration>,
    /// When the last byte arrived (or the reader was created).
    last_activity: std::time::Instant,
    shutdown: &'a AtomicBool,
}

impl LineReader<'_> {
    /// Next newline-terminated line (without the terminator), or why one
    /// could not be produced.
    fn next_line(&mut self) -> Next {
        loop {
            if let Some(nl) = self.pending.iter().position(|&b| b == b'\n') {
                let mut line: Vec<u8> = self.pending.drain(..=nl).collect();
                line.pop(); // the \n
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return Next::Line(String::from_utf8_lossy(&line).into_owned());
            }
            if self.pending.len() > MAX_LINE_BYTES {
                return Next::Oversized;
            }
            self.buf.resize(4096, 0);
            let mut stream = self.stream;
            match stream.read(&mut self.buf) {
                Ok(0) => return Next::Closed,
                Ok(n) => {
                    // The fault site fires per received chunk (not per
                    // idle poll), so `@n`/`every:k` triggers count request
                    // traffic deterministically.
                    if coconut_storage::fault::fires("server.read").is_some() {
                        return Next::Closed;
                    }
                    self.pending.extend_from_slice(&self.buf[..n]);
                    self.last_activity = std::time::Instant::now();
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    if self.shutdown.load(Ordering::Relaxed) {
                        return Next::Closed;
                    }
                    if let Some(limit) = self.idle_timeout {
                        if self.last_activity.elapsed() >= limit {
                            return Next::Idle;
                        }
                    }
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return Next::Closed,
            }
        }
    }
}

fn handle_connection<H: Handler>(
    handler: &H,
    stream: TcpStream,
    idle_timeout: Option<Duration>,
    shutdown: &Arc<AtomicBool>,
) {
    // Poll at least as often as the idle limit so short limits still fire
    // promptly.
    let poll = idle_timeout.map_or(POLL_INTERVAL, |t| {
        t.min(POLL_INTERVAL).max(Duration::from_millis(1))
    });
    let _ = stream.set_read_timeout(Some(poll));
    let _ = stream.set_nodelay(true);
    let mut reader = LineReader {
        stream: &stream,
        buf: Vec::new(),
        pending: Vec::new(),
        idle_timeout,
        last_activity: std::time::Instant::now(),
        shutdown,
    };
    let mut out = &stream;
    loop {
        let line = match reader.next_line() {
            Next::Line(line) => line,
            Next::Oversized => {
                let _ = out.write_all(
                    format!("ERR parse: request line exceeds {MAX_LINE_BYTES} bytes\n").as_bytes(),
                );
                break;
            }
            Next::Idle => {
                handler.on_idle_disconnect();
                let _ = out.write_all(b"ERR unavailable: idle-read timeout, closing\n");
                break;
            }
            Next::Closed => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        // HTTP sniffing: a GET request line switches the connection to
        // one-shot HTTP mode so `curl http://.../metrics` just works.
        if let Some(path) = line.strip_prefix("GET ") {
            let path = path.split_whitespace().next().unwrap_or("/");
            // Drain the request headers up to the blank line.
            while let Next::Line(header) = reader.next_line() {
                if header.trim().is_empty() {
                    break;
                }
            }
            let _ = write_http_response(&mut out, handler, path);
            break;
        }
        let outcome = handler.execute_line(&line);
        if coconut_storage::fault::fires("server.write").is_some() {
            break; // injected reply loss: drop the connection mid-reply
        }
        if out
            .write_all(format!("{}\n", outcome.reply).as_bytes())
            .is_err()
            || outcome.close
        {
            break;
        }
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

fn write_http_response<H: Handler>(
    out: &mut &TcpStream,
    handler: &H,
    path: &str,
) -> std::io::Result<()> {
    let (status, body) = match path {
        "/metrics" | "/stats" => ("200 OK", handler.metrics_text()),
        "/health" => ("200 OK", format!("{}\n", handler.health_line())),
        _ => ("404 Not Found", "not found\n".to_string()),
    };
    let header = format!(
        "HTTP/1.0 {status}\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    out.write_all(header.as_bytes())?;
    out.write_all(body.as_bytes())
}
