//! The typed shard client: [`RemoteShard`] speaks the line protocol to a
//! `serve --shard` worker and implements [`ShardBackend`], so the
//! coordinator's scatter-gather logic (`coconut_core::ShardSet`) is
//! *identical* code over local and remote shards — the in-process
//! `LocalShard` is the bit-identity oracle for this client.
//!
//! Reliability model: one connection per shard, requests serialized under
//! a mutex (the coordinator fans out across shards, not across requests to
//! one shard). Every request gets a bounded retry budget with capped
//! exponential backoff; refused connections and mid-request I/O errors
//! reconnect and retry until the budget — or the query's deadline — runs
//! out, then surface a typed [`Error::Unavailable`].
//!
//! A shard that exhausts its retry budget trips a **circuit breaker**: for
//! a capped, doubling hold-off window further requests fail fast with
//! `Unavailable` (no network attempts), so a dead shard costs one failed
//! round per window instead of a full retry budget per query. The first
//! request after the window acts as the re-probe — on success the breaker
//! resets; on failure the hold-off doubles up to
//! [`ClientConfig::down_backoff_cap`]. [`RemoteShard::probe`] sends an
//! explicit `PING` health probe that bypasses the breaker.
//!
//! Fault injection (chaos tests): the `client.connect` and `client.io`
//! [`coconut_storage::fault`] sites fire on this module's socket
//! operations, exercising the retry and breaker paths deterministically.
//!
//! Distances travel as shortest-roundtrip decimal strings (Rust's default
//! `f64`/`f32` `Display`), which reparse to the identical bits; that plus
//! the deterministic merge order in `ShardSet` is what makes distributed
//! answers bit-identical to single-node ones.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::ops::Range;
use std::sync::Arc;
use std::time::Duration;

use coconut_core::{ShardBackend, ShardInfo};
use coconut_series::index::Answer;
use coconut_series::Value;
use coconut_storage::{Deadline, Error, Result};
use parking_lot::Mutex;

use crate::metrics::ShardClientMetrics;

/// Timeouts and retry budget for one shard connection.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// TCP connect timeout per attempt.
    pub connect_timeout: Duration,
    /// Read timeout while waiting for a reply (also bounded by the query's
    /// deadline when one is set).
    pub request_timeout: Duration,
    /// Retry attempts after the first failure (so `retries = 3` means up
    /// to four attempts total).
    pub retries: u32,
    /// First backoff sleep; doubles per retry.
    pub backoff_start: Duration,
    /// Upper bound on one backoff sleep.
    pub backoff_cap: Duration,
    /// First circuit-breaker hold-off after a shard exhausts its retry
    /// budget; doubles per consecutive failure.
    pub down_backoff_start: Duration,
    /// Upper bound on the circuit-breaker hold-off.
    pub down_backoff_cap: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(1),
            request_timeout: Duration::from_secs(10),
            retries: 3,
            backoff_start: Duration::from_millis(25),
            backoff_cap: Duration::from_millis(500),
            down_backoff_start: Duration::from_millis(250),
            down_backoff_cap: Duration::from_secs(5),
        }
    }
}

/// Connect to `addr`, retrying refused/failed attempts with capped
/// exponential backoff. Used by load generators whose server may still be
/// binding when the first client starts.
pub fn connect_with_retry(
    addr: &str,
    attempts: u32,
    backoff_start: Duration,
    backoff_cap: Duration,
) -> std::io::Result<TcpStream> {
    let mut backoff = backoff_start;
    let mut last = None;
    for attempt in 0..attempts.max(1) {
        if attempt > 0 {
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(backoff_cap);
        }
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => last = Some(e),
        }
    }
    Err(last.unwrap_or_else(|| std::io::Error::other("no connect attempts made")))
}

/// Circuit-breaker state: while `until` is in the future, requests fail
/// fast without touching the network.
struct DownState {
    until: Option<std::time::Instant>,
    /// The hold-off the *next* trip will use (doubles per trip, capped).
    backoff: Duration,
}

/// A [`ShardBackend`] over a TCP connection to a `serve --shard` worker.
pub struct RemoteShard {
    addr: String,
    resolved: SocketAddr,
    range: Range<u64>,
    config: ClientConfig,
    conn: Mutex<Option<BufReader<TcpStream>>>,
    down: Mutex<DownState>,
    metrics: Option<Arc<ShardClientMetrics>>,
}

impl RemoteShard {
    /// A client for the shard at `addr`, which the coordinator's partition
    /// map assigns the slice `range`. No connection is made until the
    /// first request. `metrics` (when given) records requests, retries,
    /// unavailability, and candidate counts for this shard.
    pub fn new(
        addr: impl Into<String>,
        range: Range<u64>,
        config: ClientConfig,
        metrics: Option<Arc<ShardClientMetrics>>,
    ) -> Result<Self> {
        let addr = addr.into();
        let resolved = addr
            .to_socket_addrs()
            .map_err(|e| Error::invalid(format!("cannot resolve shard address {addr}: {e}")))?
            .next()
            .ok_or_else(|| Error::invalid(format!("shard address {addr} resolves to nothing")))?;
        let down = Mutex::new(DownState {
            until: None,
            backoff: config.down_backoff_start,
        });
        Ok(RemoteShard {
            addr,
            resolved,
            range,
            config,
            conn: Mutex::new(None),
            down,
            metrics,
        })
    }

    /// The shard's address as given at construction.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The slice the partition map assigns this shard.
    pub fn range(&self) -> Range<u64> {
        self.range.clone()
    }

    /// True while the circuit breaker holds this shard down (requests fail
    /// fast without network attempts).
    pub fn is_down(&self) -> bool {
        self.down
            .lock()
            .until
            .is_some_and(|t| t > std::time::Instant::now())
    }

    /// Trip the breaker: hold requests off for the current backoff window,
    /// then double it (capped) for the next trip.
    fn mark_down(&self) {
        let mut down = self.down.lock();
        let hold = down.backoff;
        down.until = Some(std::time::Instant::now() + hold);
        down.backoff = (down.backoff * 2).min(self.config.down_backoff_cap);
    }

    /// Reset the breaker after a successful round trip.
    fn mark_up(&self) {
        let mut down = self.down.lock();
        down.until = None;
        down.backoff = self.config.down_backoff_start;
    }

    /// Explicit health probe: one `PING` round trip, bypassing the circuit
    /// breaker (this *is* the re-probe). Success resets the breaker.
    pub fn probe(&self) -> Result<()> {
        let mut conn = self.conn.lock();
        let result = self.request_locked(&mut conn, "PING", Deadline::NONE);
        drop(conn);
        match result {
            Ok(_) => {
                self.mark_up();
                Ok(())
            }
            Err(e) => {
                if e.is_unavailable() {
                    self.mark_down();
                }
                Err(e)
            }
        }
    }

    /// Send one request line and read the one-line reply, retrying with
    /// backoff on connection failures. `OK ...` replies return the text
    /// after `OK `; `ERR ...` replies map to typed errors. While the
    /// circuit breaker is tripped the request fails fast; the first
    /// request after the hold-off window re-probes the shard.
    fn request(&self, line: &str, deadline: Deadline) -> Result<String> {
        if self.is_down() {
            if let Some(m) = &self.metrics {
                m.requests.inc();
                m.unavailable.inc();
            }
            return Err(Error::unavailable(format!(
                "shard {}: marked down by the circuit breaker, awaiting re-probe",
                self.addr
            )));
        }
        let mut conn = self.conn.lock();
        if let Some(m) = &self.metrics {
            m.requests.inc();
            m.in_flight.set(1.0);
        }
        let result = self.request_locked(&mut conn, line, deadline);
        drop(conn);
        if let Some(m) = &self.metrics {
            m.in_flight.set(0.0);
            if matches!(&result, Err(e) if e.is_unavailable()) {
                m.unavailable.inc();
            }
        }
        match &result {
            Ok(_) => self.mark_up(),
            // Only transport-level unavailability trips the breaker; typed
            // server replies (deadline, invalid) prove the shard is alive.
            Err(e) if e.is_unavailable() => self.mark_down(),
            Err(_) => self.mark_up(),
        }
        result
    }

    fn request_locked(
        &self,
        conn: &mut Option<BufReader<TcpStream>>,
        line: &str,
        deadline: Deadline,
    ) -> Result<String> {
        let mut backoff = self.config.backoff_start;
        let mut last_err = String::new();
        for attempt in 0..=self.config.retries {
            if attempt > 0 {
                if let Some(m) = &self.metrics {
                    m.retries.inc();
                }
                let mut sleep = backoff;
                if let Some(at) = deadline.instant() {
                    let left = at.saturating_duration_since(std::time::Instant::now());
                    if left.is_zero() {
                        break;
                    }
                    sleep = sleep.min(left);
                }
                std::thread::sleep(sleep);
                backoff = (backoff * 2).min(self.config.backoff_cap);
            }
            deadline.check().map_err(|_| {
                Error::unavailable(format!(
                    "shard {}: deadline expired after {attempt} attempts ({last_err})",
                    self.addr
                ))
            })?;
            match self.attempt(conn, line, deadline) {
                Ok(reply) => return self.parse_reply(reply),
                Err(e) => {
                    *conn = None; // a failed stream is not reusable
                    last_err = e.to_string();
                }
            }
        }
        Err(Error::unavailable(format!(
            "shard {}: {last_err} after {} attempts",
            self.addr,
            self.config.retries + 1
        )))
    }

    /// One write/read round trip over the (re)connected stream.
    fn attempt(
        &self,
        conn: &mut Option<BufReader<TcpStream>>,
        line: &str,
        deadline: Deadline,
    ) -> std::io::Result<String> {
        let reader = match conn {
            Some(reader) => reader,
            None => {
                if coconut_storage::fault::fires("client.connect").is_some() {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::ConnectionRefused,
                        "injected fault: client.connect",
                    ));
                }
                let stream =
                    TcpStream::connect_timeout(&self.resolved, self.config.connect_timeout)?;
                stream.set_nodelay(true)?;
                conn.insert(BufReader::new(stream))
            }
        };
        if coconut_storage::fault::fires("client.io").is_some() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                "injected fault: client.io",
            ));
        }
        let mut read_timeout = self.config.request_timeout;
        if let Some(at) = deadline.instant() {
            let left = at.saturating_duration_since(std::time::Instant::now());
            read_timeout = read_timeout.min(left.max(Duration::from_millis(1)));
        }
        reader.get_ref().set_read_timeout(Some(read_timeout))?;
        reader.get_ref().write_all(format!("{line}\n").as_bytes())?;
        let mut reply = String::new();
        if reader.read_line(&mut reply)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "shard closed the connection",
            ));
        }
        Ok(reply.trim_end().to_string())
    }

    /// Map a wire reply to the text after `OK ` or a typed error.
    fn parse_reply(&self, reply: String) -> Result<String> {
        if let Some(body) = reply.strip_prefix("OK ") {
            return Ok(body.to_string());
        }
        let msg = format!("shard {}: {reply}", self.addr);
        if reply.starts_with("ERR deadline:") {
            Err(Error::deadline(msg))
        } else if reply.starts_with("ERR unavailable:") || reply.starts_with("ERR busy:") {
            Err(Error::unavailable(msg))
        } else if reply.starts_with("ERR io:") {
            // Keep the category across the wire: a shard's injected or
            // real I/O failure must not surface as a client usage error.
            Err(Error::Io(std::io::Error::other(msg)))
        } else if reply.starts_with("ERR corrupt:") {
            Err(Error::corrupt(msg))
        } else {
            Err(Error::invalid(msg))
        }
    }

    /// Record hit-count contribution to the candidates counter.
    fn note_candidates(&self, n: usize) {
        if let Some(m) = &self.metrics {
            m.candidates.add(n as u64);
        }
    }
}

/// Serialize a query vector as the protocol's `q=v:` literal form. `f32`
/// `Display` is shortest-roundtrip, so the worker reparses identical bits.
fn fmt_query(query: &[Value]) -> String {
    let mut out = String::from("q=v:");
    for (i, v) in query.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out
}

/// The `deadline_ms=` argument for the remaining budget, when one is set.
fn fmt_deadline(deadline: Deadline) -> String {
    match deadline.instant() {
        Some(at) => {
            let left = at.saturating_duration_since(std::time::Instant::now());
            format!(" deadline_ms={}", left.as_millis().max(1))
        }
        None => String::new(),
    }
}

/// The `bound=` argument, omitted when the bound is infinite (the wire
/// default).
fn fmt_bound(bound: f64) -> String {
    if bound.is_finite() {
        format!(" bound={bound}")
    } else {
        String::new()
    }
}

/// Pull `key=` from a reply's `key=value` fields.
fn field<'a>(body: &'a str, key: &str) -> Result<&'a str> {
    body.split_whitespace()
        .find_map(|tok| tok.strip_prefix(key))
        .ok_or_else(|| Error::corrupt(format!("shard reply is missing {key} in {body:?}")))
}

fn field_u64(body: &str, key: &str) -> Result<u64> {
    let raw = field(body, key)?;
    raw.parse()
        .map_err(|_| Error::corrupt(format!("shard reply field {key}{raw} is not an integer")))
}

/// Parse `pos=<n>|none dist=<d>` into an [`Answer`].
fn parse_answer(body: &str) -> Result<Answer> {
    let pos = field(body, "pos=")?;
    if pos == "none" {
        return Ok(Answer::none());
    }
    let pos: u64 = pos
        .parse()
        .map_err(|_| Error::corrupt(format!("shard reply pos={pos} is not an integer")))?;
    let dist = field(body, "dist=")?;
    let dist: f64 = dist
        .parse()
        .map_err(|_| Error::corrupt(format!("shard reply dist={dist} is not a float")))?;
    Ok(Answer { pos, dist })
}

/// Parse `hits=none|p:d,p:d,...` into an answer list.
fn parse_hits(body: &str) -> Result<Vec<Answer>> {
    let hits = field(body, "hits=")?;
    if hits == "none" {
        return Ok(Vec::new());
    }
    hits.split(',')
        .map(|pair| {
            let (pos, dist) = pair
                .split_once(':')
                .ok_or_else(|| Error::corrupt(format!("malformed hit {pair:?}")))?;
            Ok(Answer {
                pos: pos
                    .parse()
                    .map_err(|_| Error::corrupt(format!("malformed hit position {pos:?}")))?,
                dist: dist
                    .parse()
                    .map_err(|_| Error::corrupt(format!("malformed hit distance {dist:?}")))?,
            })
        })
        .collect()
}

/// Parse the `start= end= covered= seq= runs=` fields of a shard reply.
fn parse_shard_info(body: &str) -> Result<ShardInfo> {
    Ok(ShardInfo {
        start: field_u64(body, "start=")?,
        end: field_u64(body, "end=")?,
        covered_end: field_u64(body, "covered=")?,
        seq: field_u64(body, "seq=")?,
        runs: field_u64(body, "runs=")?,
    })
}

impl ShardBackend for RemoteShard {
    fn slice(&self) -> Range<u64> {
        self.range.clone()
    }

    fn info(&self) -> Result<ShardInfo> {
        let body = self.request("SHARD-INFO", Deadline::NONE)?;
        parse_shard_info(&body)
    }

    fn build(&self, upto: u64) -> Result<ShardInfo> {
        let upto = upto.clamp(self.range.start, self.range.end);
        let body = self.request(
            &format!(
                "BUILD start={} end={} upto={upto}",
                self.range.start, self.range.end
            ),
            Deadline::NONE,
        )?;
        parse_shard_info(&body)
    }

    fn exact(&self, query: &[Value], bound: f64, deadline: Deadline) -> Result<Answer> {
        let line = format!(
            "EXACT {}{}{}",
            fmt_query(query),
            fmt_deadline(deadline),
            fmt_bound(bound)
        );
        let body = self.request(&line, deadline)?;
        let answer = parse_answer(&body)?;
        self.note_candidates(answer.is_some() as usize);
        Ok(answer)
    }

    fn knn(
        &self,
        query: &[Value],
        k: usize,
        bound: f64,
        deadline: Deadline,
    ) -> Result<Vec<Answer>> {
        let line = format!(
            "KNN k={k} {}{}{}",
            fmt_query(query),
            fmt_deadline(deadline),
            fmt_bound(bound)
        );
        let body = self.request(&line, deadline)?;
        let hits = parse_hits(&body)?;
        self.note_candidates(hits.len());
        Ok(hits)
    }

    fn range(&self, query: &[Value], epsilon: f64, deadline: Deadline) -> Result<Vec<Answer>> {
        let line = format!(
            "RANGE eps={epsilon} {}{}",
            fmt_query(query),
            fmt_deadline(deadline)
        );
        let body = self.request(&line, deadline)?;
        let hits = parse_hits(&body)?;
        self.note_candidates(hits.len());
        Ok(hits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replies_parse_and_errors_are_typed() {
        let shard = RemoteShard::new(
            "127.0.0.1:1", // never connected to in this test
            0..10,
            ClientConfig::default(),
            None,
        )
        .unwrap();
        let a = parse_answer("exact pos=7 dist=1.5e300 covered=10 seq=2 fetched=3").unwrap();
        assert_eq!(a.pos, 7);
        assert_eq!(a.dist.to_bits(), 1.5e300f64.to_bits());
        assert!(
            !parse_answer("exact pos=none dist=inf covered=0 seq=0 fetched=0")
                .unwrap()
                .is_some()
        );
        let hits = parse_hits("knn k=2 hits=3:0.25,9:1.75").unwrap();
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[1].pos, 9);
        assert!(parse_hits("range eps=1 hits=none").unwrap().is_empty());
        let info = parse_shard_info("shard-info start=5 end=10 covered=7 seq=4 runs=2").unwrap();
        assert_eq!((info.start, info.end, info.covered_end), (5, 10, 7));

        assert!(shard
            .parse_reply("ERR deadline: too slow".into())
            .unwrap_err()
            .is_deadline());
        assert!(shard
            .parse_reply("ERR busy: admission queue full".into())
            .unwrap_err()
            .is_unavailable());
        assert!(matches!(
            shard.parse_reply("ERR parse: nonsense".into()),
            Err(Error::InvalidArg(_))
        ));
        assert!(matches!(
            shard.parse_reply("ERR io: injected fault at atomic.fsync".into()),
            Err(Error::Io(_))
        ));
        assert!(matches!(
            shard.parse_reply("ERR corrupt: checksum mismatch".into()),
            Err(Error::Corrupt(_))
        ));
    }

    #[test]
    fn unreachable_shard_is_typed_unavailable_within_budget() {
        // Port 1 on localhost refuses immediately; the retry budget should
        // be exhausted quickly and surface Unavailable.
        let shard = RemoteShard::new(
            "127.0.0.1:1",
            0..10,
            ClientConfig {
                retries: 2,
                backoff_start: Duration::from_millis(1),
                backoff_cap: Duration::from_millis(2),
                ..ClientConfig::default()
            },
            None,
        )
        .unwrap();
        let started = std::time::Instant::now();
        let err = shard.info().unwrap_err();
        assert!(err.is_unavailable(), "{err}");
        assert!(err.to_string().contains("3 attempts"), "{err}");
        assert!(started.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn circuit_breaker_fails_fast_then_reprobes_after_holdoff() {
        let shard = RemoteShard::new(
            "127.0.0.1:1", // refuses instantly
            0..10,
            ClientConfig {
                retries: 0,
                backoff_start: Duration::from_millis(1),
                backoff_cap: Duration::from_millis(1),
                down_backoff_start: Duration::from_millis(40),
                down_backoff_cap: Duration::from_millis(80),
                ..ClientConfig::default()
            },
            None,
        )
        .unwrap();
        assert!(!shard.is_down());
        // First failure trips the breaker...
        assert!(shard.info().unwrap_err().is_unavailable());
        assert!(shard.is_down());
        // ...and while tripped, requests fail fast without touching the
        // network (the error names the breaker).
        let started = std::time::Instant::now();
        let err = shard.info().unwrap_err();
        assert!(err.to_string().contains("circuit breaker"), "{err}");
        assert!(started.elapsed() < Duration::from_millis(20));
        // After the hold-off window the next request re-probes (and fails
        // again here, doubling the hold-off up to the cap).
        std::thread::sleep(Duration::from_millis(50));
        let err = shard.info().unwrap_err();
        assert!(!err.to_string().contains("circuit breaker"), "{err}");
        assert!(shard.is_down());
        // An explicit probe bypasses the breaker.
        assert!(shard.probe().is_err());
    }

    #[test]
    fn query_serialization_round_trips_f32_bits() {
        let q: Vec<Value> = vec![1.5, -0.25, 3.0e-7, f32::MIN_POSITIVE];
        let line = fmt_query(&q);
        let parsed: Vec<Value> = line
            .strip_prefix("q=v:")
            .unwrap()
            .split(',')
            .map(|t| t.parse().unwrap())
            .collect();
        for (a, b) in q.iter().zip(&parsed) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
