//! The coordinator: one process that owns the key-space partition map and
//! scatter-gathers queries across `serve --shard` workers.
//!
//! [`CoordinatorEngine`] wraps a `coconut_core::ShardSet` of
//! [`RemoteShard`] clients — the *same* merge logic the in-process oracle
//! uses, so a distributed answer differs from a single-node one only if
//! the wire round trip loses information (it does not: distances travel
//! as shortest-roundtrip decimals).
//!
//! Scatter-gather rounds:
//!
//! * `EXACT` visits shards in ascending slice order, passing each the best
//!   distance so far as its pruning `bound=` — a shard whose slice cannot
//!   beat the bound does almost no work and returns `pos=none`.
//! * `KNN` keeps the merged top-k across shards and forwards the current
//!   k-th distance as the bound; the final merge sorts by
//!   `(distance, position)` so ties break identically to a single index.
//! * `RANGE` has a fixed radius (no bound tightening), so all shards are
//!   queried in parallel and the hit lists are merged sorted.
//!
//! It implements [`Handler`], so the ordinary [`crate::Server`] listener
//! serves it: clients speak the exact same line protocol to a coordinator
//! as to a single node.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use coconut_core::backend::partition;
use coconut_core::ShardSet;
use coconut_series::dataset::Dataset;
use coconut_storage::{Deadline, Error, Result};

use crate::client::{ClientConfig, RemoteShard};
use crate::engine::{
    err_reply, fmt_answer, fmt_hits, fmt_shard_info, parse_err_reply, resolve_query, Handler,
    Outcome,
};
use crate::metrics::CoordinatorMetrics;
use crate::protocol::{parse, Request};

/// The distributed query engine: partition map + scatter-gather over
/// remote shards, behind the same [`Handler`] surface as a single node.
pub struct CoordinatorEngine {
    set: ShardSet<RemoteShard>,
    dataset: Dataset,
    metrics: Arc<CoordinatorMetrics>,
    default_deadline: Option<Duration>,
    /// Covered prefix and manifest-sequence sum, cached after the
    /// operations that can change them (BUILD / INGEST / SHARD-INFO) so
    /// query replies don't pay an extra info round per shard.
    covered: AtomicU64,
    seq_sum: AtomicU64,
}

impl CoordinatorEngine {
    /// Build a coordinator over the shard workers at `shard_addrs`. The
    /// dataset's key space is partitioned into `shard_addrs.len()`
    /// near-equal contiguous slices, assigned in address order.
    pub fn new(
        shard_addrs: &[String],
        dataset: Dataset,
        client_config: ClientConfig,
        default_deadline: Option<Duration>,
    ) -> Result<Self> {
        if shard_addrs.is_empty() {
            return Err(Error::invalid("a coordinator needs at least one shard"));
        }
        let metrics = Arc::new(CoordinatorMetrics::new(shard_addrs.len()));
        let ranges = partition(dataset.len(), shard_addrs.len());
        let shards = shard_addrs
            .iter()
            .zip(ranges)
            .enumerate()
            .map(|(i, (addr, range))| {
                RemoteShard::new(
                    addr.clone(),
                    range,
                    client_config.clone(),
                    Some(Arc::clone(&metrics.shards[i])),
                )
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(CoordinatorEngine {
            set: ShardSet::new(shards)?,
            dataset,
            metrics,
            default_deadline,
            covered: AtomicU64::new(0),
            seq_sum: AtomicU64::new(0),
        })
    }

    /// The coordinator's metric set.
    pub fn metrics(&self) -> &Arc<CoordinatorMetrics> {
        &self.metrics
    }

    /// The shard set (tests use it to inspect the partition map).
    pub fn set(&self) -> &ShardSet<RemoteShard> {
        &self.set
    }

    /// Ask every shard for its info and refresh the cached coverage.
    /// Returns the per-shard infos in slice order.
    fn refresh(&self) -> Result<Vec<coconut_core::ShardInfo>> {
        let infos = self.set.infos()?;
        let covered = self.set.covered_end()?;
        self.covered.store(covered, Ordering::Relaxed);
        self.seq_sum
            .store(infos.iter().map(|i| i.seq).sum(), Ordering::Relaxed);
        Ok(infos)
    }

    fn deadline(&self, requested_ms: Option<u64>) -> Deadline {
        match requested_ms {
            Some(ms) => Deadline::after(Duration::from_millis(ms)),
            None => self
                .default_deadline
                .map_or(Deadline::NONE, Deadline::after),
        }
    }

    /// Execute one request line and format the reply.
    pub fn execute_line(&self, line: &str) -> Outcome {
        let request = match parse(line) {
            Ok(r) => r,
            Err(e) => {
                self.metrics.errors.inc();
                return Outcome {
                    reply: parse_err_reply(&e),
                    close: false,
                };
            }
        };
        if matches!(request, Request::Quit) {
            return Outcome {
                reply: "OK bye".into(),
                close: true,
            };
        }
        let reply = match self.execute(&request) {
            Ok(reply) => reply,
            Err(e) => {
                self.metrics.record_failure(&e);
                err_reply(&e)
            }
        };
        Outcome {
            reply,
            close: false,
        }
    }

    fn execute(&self, request: &Request) -> Result<String> {
        let covered = || self.covered.load(Ordering::Relaxed);
        let seq = || self.seq_sum.load(Ordering::Relaxed);
        match request {
            Request::Ping => Ok("OK pong".into()),
            Request::Health => Ok(self.health_line()),
            Request::Stats => Ok(format!("{}# EOF", self.metrics.render())),
            Request::Exact {
                query,
                deadline_ms,
                bound: _,
                degraded,
            } => {
                // An incoming bound= is ignored: the coordinator derives
                // per-shard bounds from its own scatter-gather rounds.
                let deadline = self.deadline(*deadline_ms);
                let q = resolve_query(&self.dataset, query)?;
                let started = Instant::now();
                let (answer, missing) = if *degraded {
                    let partial = self.set.exact_degraded(&q, deadline)?;
                    (partial.value, partial.missing)
                } else {
                    (self.set.exact(&q, deadline)?, Vec::new())
                };
                self.metrics.record_query(started.elapsed().as_secs_f64());
                self.note_degraded(&missing);
                Ok(format!(
                    "OK exact {} covered={} seq={}{}",
                    fmt_answer(&answer),
                    covered(),
                    seq(),
                    fmt_missing(&missing)
                ))
            }
            Request::Knn {
                k,
                query,
                deadline_ms,
                bound: _,
                degraded,
            } => {
                let deadline = self.deadline(*deadline_ms);
                let q = resolve_query(&self.dataset, query)?;
                let started = Instant::now();
                let (answers, missing) = if *degraded {
                    let partial = self.set.knn_degraded(&q, *k, deadline)?;
                    (partial.value, partial.missing)
                } else {
                    (self.set.knn(&q, *k, deadline)?, Vec::new())
                };
                self.metrics.record_query(started.elapsed().as_secs_f64());
                self.note_degraded(&missing);
                Ok(format!(
                    "OK knn k={} covered={} seq={} hits={}{}",
                    k,
                    covered(),
                    seq(),
                    fmt_hits(&answers),
                    fmt_missing(&missing)
                ))
            }
            Request::Range {
                epsilon,
                query,
                deadline_ms,
                degraded,
            } => {
                let deadline = self.deadline(*deadline_ms);
                let q = resolve_query(&self.dataset, query)?;
                let started = Instant::now();
                let (answers, missing) = if *degraded {
                    let partial = self.set.range_degraded(&q, *epsilon, deadline)?;
                    (partial.value, partial.missing)
                } else {
                    (self.set.range(&q, *epsilon, deadline)?, Vec::new())
                };
                self.metrics.record_query(started.elapsed().as_secs_f64());
                self.note_degraded(&missing);
                Ok(format!(
                    "OK range eps={} covered={} seq={} hits={}{}",
                    epsilon,
                    covered(),
                    seq(),
                    fmt_hits(&answers),
                    fmt_missing(&missing)
                ))
            }
            Request::Ingest { upto } => {
                let before = self.covered.load(Ordering::Relaxed);
                let upto = upto.unwrap_or_else(|| self.dataset.len());
                let infos = self.set.build(upto)?;
                let runs: u64 = infos.iter().map(|i| i.runs).sum();
                self.refresh()?;
                let after = self.covered.load(Ordering::Relaxed);
                Ok(format!(
                    "OK ingest covered={} added={} runs={runs}",
                    after,
                    after.saturating_sub(before)
                ))
            }
            Request::Build { start, end, upto } => {
                // The coordinator owns the partition map; a BUILD request
                // must span the whole key space it manages.
                if *start != 0 {
                    return Err(Error::invalid(
                        "the coordinator owns the partition map; BUILD must use start=0",
                    ));
                }
                let upto = upto.unwrap_or(*end).min(*end).min(self.dataset.len());
                self.set.build(upto)?;
                let infos = self.refresh()?;
                let runs: u64 = infos.iter().map(|i| i.runs).sum();
                Ok(format!(
                    "OK build start=0 end={} covered={} seq={} runs={runs}",
                    self.dataset.len(),
                    covered(),
                    seq()
                ))
            }
            Request::ShardInfo => {
                let infos = self.refresh()?;
                let per_shard = infos
                    .iter()
                    .map(|i| fmt_shard_info(i).replace(' ', ","))
                    .collect::<Vec<_>>()
                    .join(" ");
                Ok(format!(
                    "OK shard-info shards={} covered={} seq={} {per_shard}",
                    infos.len(),
                    covered(),
                    seq()
                ))
            }
            Request::Compact | Request::Gc => Err(Error::invalid(
                "COMPACT and GC are not supported by the coordinator; \
                 send them to the shard workers",
            )),
            Request::Quit => Ok("OK bye".into()),
        }
    }

    /// Count a degraded (shards lost) answer in the metrics.
    fn note_degraded(&self, missing: &[std::ops::Range<u64>]) {
        if !missing.is_empty() {
            self.metrics.degraded.inc();
        }
    }

    /// One-line health summary: reachable shard count and coverage.
    pub fn health_line(&self) -> String {
        match self.refresh() {
            Ok(infos) => format!(
                "OK healthy shards={} covered={}",
                infos.len(),
                self.covered.load(Ordering::Relaxed)
            ),
            Err(e) => err_reply(&e),
        }
    }
}

/// The ` degraded=1 missing=a..b,...` reply suffix — empty when nothing is
/// missing, so complete degraded-mode replies stay byte-identical to
/// strict ones.
fn fmt_missing(missing: &[std::ops::Range<u64>]) -> String {
    if missing.is_empty() {
        return String::new();
    }
    let slices = missing
        .iter()
        .map(|r| format!("{}..{}", r.start, r.end))
        .collect::<Vec<_>>()
        .join(",");
    format!(" degraded=1 missing={slices}")
}

impl Handler for CoordinatorEngine {
    fn execute_line(&self, line: &str) -> Outcome {
        CoordinatorEngine::execute_line(self, line)
    }

    fn metrics_text(&self) -> String {
        self.metrics.render()
    }

    fn health_line(&self) -> String {
        CoordinatorEngine::health_line(self)
    }

    fn on_rejected(&self) {
        self.metrics.rejected.inc();
    }

    fn on_idle_disconnect(&self) {
        self.metrics.idle_disconnects.inc();
    }
}
