//! # coconut-server — Coconut as a service
//!
//! A small concurrent query server over the LSM Coconut index
//! ([`coconut_core::LsmCoconut`]). The design goal is end-to-end
//! correctness under churn: every query pins a snapshot of the index
//! (run set + covered prefix + manifest sequence) under a brief lock,
//! then executes entirely lock-free against those pinned runs, while
//! ingest and compaction proceed concurrently. Replies carry
//! `covered=<n> seq=<s>` so a client can brute-force-check the answer
//! against exactly the prefix the server saw.
//!
//! Layers, bottom-up:
//!
//! * [`protocol`] — line-delimited request parsing (`EXACT q=seed:7 ...`);
//! * [`engine`] — request execution over pinned snapshots with
//!   cooperative per-request deadlines;
//! * [`metrics`] — the server's Prometheus metric set (QPS, latency
//!   percentiles, scan work, compaction debt);
//! * [`pool`] — worker threads behind a bounded admission queue, plus
//!   minimal HTTP `GET` handling for `curl`/Prometheus;
//! * [`server`] — the TCP listener, accept loop, and clean shutdown.

#![deny(missing_docs)]

pub mod engine;
pub mod metrics;
pub mod pool;
pub mod protocol;
pub mod server;

pub use engine::{Engine, Outcome};
pub use metrics::ServerMetrics;
pub use pool::Pool;
pub use protocol::{parse, QuerySpec, Request};
pub use server::{Server, ServerConfig};
