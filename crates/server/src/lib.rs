//! # coconut-server — Coconut as a service
//!
//! A small concurrent query server over the LSM Coconut index
//! ([`coconut_core::LsmCoconut`]). The design goal is end-to-end
//! correctness under churn: every query pins a snapshot of the index
//! (run set + covered prefix + manifest sequence) under a brief lock,
//! then executes entirely lock-free against those pinned runs, while
//! ingest and compaction proceed concurrently. Replies carry
//! `covered=<n> seq=<s>` so a client can brute-force-check the answer
//! against exactly the prefix the server saw.
//!
//! Layers, bottom-up:
//!
//! * [`protocol`] — line-delimited request parsing (`EXACT q=seed:7 ...`)
//!   with typed parse errors naming the offending token;
//! * [`engine`] — request execution over pinned snapshots with
//!   cooperative per-request deadlines, in whole-dataset or shard-worker
//!   mode, behind the [`engine::Handler`] trait;
//! * [`metrics`] — the server's Prometheus metric set (QPS, latency
//!   percentiles, scan work, compaction debt), plus the coordinator's
//!   per-shard client instruments;
//! * [`pool`] — worker threads behind a bounded admission queue, plus
//!   minimal HTTP `GET` handling for `curl`/Prometheus;
//! * [`server`] — the TCP listener, accept loop, and clean shutdown,
//!   generic over the [`engine::Handler`] it serves.
//!
//! The distributed layer sits on top:
//!
//! * [`client`] — [`client::RemoteShard`], a typed `ShardBackend` over TCP
//!   with timeouts, bounded retry, and per-shard metrics;
//! * [`coordinator`] — [`coordinator::CoordinatorEngine`], the partition
//!   map plus scatter-gather kNN with pruning-bound sharing across shards.

#![deny(missing_docs)]
// A stray panic on the serving path kills a worker thread mid-request:
// unwrap/expect are denied outside tests, with explicit per-site
// `allow`s where startup failure is genuinely unrecoverable.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod client;
pub mod coordinator;
pub mod engine;
pub mod metrics;
pub mod pool;
pub mod protocol;
pub mod server;

pub use client::{connect_with_retry, ClientConfig, RemoteShard};
pub use coordinator::CoordinatorEngine;
pub use engine::{Engine, Handler, Outcome};
pub use metrics::{CoordinatorMetrics, ServerMetrics, ShardClientMetrics};
pub use pool::Pool;
pub use protocol::{parse, ParseError, QuerySpec, Request};
pub use server::{Server, ServerConfig};
