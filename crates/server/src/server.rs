//! The TCP listener: accept loop, admission, and clean shutdown.
//!
//! [`Server`] is generic over the request [`Handler`] it serves — the
//! default [`Engine`] (single node or shard worker) or the distributed
//! `CoordinatorEngine` — so every deployment shape shares one listener,
//! admission queue, and shutdown path.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use coconut_storage::{Error, Result};

use crate::engine::{Engine, Handler};
use crate::pool::Pool;

/// How the server binds and sizes its worker pool.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see [`Server::addr`]).
    pub addr: String,
    /// Worker threads serving connections.
    pub workers: usize,
    /// Admission-queue depth beyond the connections being served.
    pub queue: usize,
    /// Default per-query deadline (ms) when a request sets none.
    pub default_deadline_ms: Option<u64>,
    /// Close connections that send nothing for this long (ms); `None`
    /// keeps idle connections open indefinitely. Disconnects are counted
    /// by `coconut_idle_disconnect_total`.
    pub idle_timeout_ms: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue: 64,
            default_deadline_ms: None,
            idle_timeout_ms: None,
        }
    }
}

/// A running query server. Dropping it (or calling [`Server::shutdown`])
/// stops the accept loop, drains the workers, and joins every thread.
pub struct Server<H: Handler = Engine> {
    engine: Arc<H>,
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    pool: Arc<Pool<H>>,
}

impl<H: Handler> Server<H> {
    /// Bind the listener and start the accept loop and worker pool.
    pub fn start(engine: Arc<H>, config: &ServerConfig) -> Result<Server<H>> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| Error::invalid(format!("cannot bind {}: {e}", config.addr)))?;
        let addr = listener
            .local_addr()
            .map_err(|e| Error::invalid(format!("cannot read bound address: {e}")))?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let pool = Arc::new(Pool::new(
            Arc::clone(&engine),
            config.workers,
            config.queue,
            config.idle_timeout_ms.map(Duration::from_millis),
            Arc::clone(&shutdown),
        ));
        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let engine = Arc::clone(&engine);
            let pool = Arc::clone(&pool);
            std::thread::Builder::new()
                .name("coconut-accept".into())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if shutdown.load(Ordering::Relaxed) {
                            break;
                        }
                        if let Ok(stream) = conn {
                            if !pool.dispatch(stream) {
                                engine.on_rejected();
                            }
                        }
                    }
                })
                .map_err(|e| Error::invalid(format!("cannot spawn accept thread: {e}")))?
        };
        Ok(Server {
            engine,
            addr,
            shutdown,
            accept: Some(accept),
            pool,
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The handler this server executes requests with.
    pub fn engine(&self) -> &Arc<H> {
        &self.engine
    }

    /// Stop accepting, drain the workers, and join every thread.
    /// Idempotent; also invoked by `Drop`.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop: it only re-checks the flag after a
        // connection arrives, so make one.
        if let Ok(stream) = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1)) {
            drop(stream);
        }
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        self.pool.join();
    }
}

impl<H: Handler> Drop for Server<H> {
    fn drop(&mut self) {
        self.shutdown();
    }
}
