//! `coconut` — command-line interface to the Coconut data series indexes.
//!
//! ```text
//! coconut gen   --kind randomwalk --count 100000 --len 256 --seed 1 data.ds
//! coconut info  data.ds
//! coconut build --index ctree --leaf 2000 --out-dir ./idx data.ds
//! coconut query --index idx/ctree-0-ptr.idx --data data.ds --seed 42
//! coconut query --index idx/ctree-0-ptr.idx --data data.ds --pos 17 --k 5
//! coconut query --index idx/ctree-0-ptr.idx --data data.ds --seed 7 --dtw 10
//! coconut query --index idx/ctree-0-ptr.idx --data data.ds --seed 7 --range 4.5
//! ```

use std::process::ExitCode;

mod args;
mod commands;

fn main() -> ExitCode {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    // Install the deterministic fault plan (CLI `--faults`/`--fault-seed`
    // override the COCONUT_FAULTS / COCONUT_FAULT_SEED environment) before
    // any command touches disk or the network.
    match args::take_fault_options(&mut argv) {
        Ok(Some((spec, seed))) => match coconut_storage::FaultPlan::parse(&spec, seed) {
            Ok(plan) => {
                coconut_storage::fault::install(plan);
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        },
        Ok(None) => {
            if let Err(e) = coconut_storage::fault::install_from_env() {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
        Err(msg) => {
            eprintln!("{msg}");
            eprintln!("{}", args::USAGE);
            return ExitCode::FAILURE;
        }
    }
    match args::parse(&argv) {
        Ok(cmd) => match commands::run(cmd) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(msg) => {
            eprintln!("{msg}");
            eprintln!("{}", args::USAGE);
            ExitCode::FAILURE
        }
    }
}
