//! Argument parsing for the `coconut` CLI (no external crates).

use std::collections::HashMap;
use std::path::PathBuf;

use coconut_core::{CompactionPolicyKind, SplitPolicyKind};

/// Usage text shown on parse errors and `--help`.
pub const USAGE: &str = "\
usage:
  coconut gen   --kind <randomwalk|seismic|astronomy> --count N --len L [--seed S] <out.ds>
  coconut info  <data.ds>
  coconut build --index <ctree|ctrie> [--materialized] [--leaf N]
                [--split-policy <fixed|adaptive>]
                [--memory-mb M] [--shards N] [--out-dir DIR] <data.ds>
  coconut query --index <path.idx> --data <data.ds>
                (--seed S | --pos P) [--k K] [--radius R]
                [--dtw BAND] [--range EPS] [--approximate]
  coconut ingest  --data <data.ds> --index-dir DIR [--materialized]
                  [--leaf N] [--split-policy <fixed|adaptive>]
                  [--compaction <tiered|leveled>] [--writers N]
                  [--memory-mb M] [--batch N] [--max-runs N]
  coconut compact --data <data.ds> --index-dir DIR
  coconut scrub   --data <data.ds> --index-dir DIR [--quarantine]
  coconut serve   --data <data.ds> --index-dir DIR [--addr HOST:PORT]
                  [--workers N] [--queue N] [--deadline-ms MS]
                  [--idle-timeout-ms MS] [--initial N] [--leaf N]
                  [--split-policy P] [--compaction P] [--shard]
                  [--memory-mb M]
  coconut serve   --data <data.ds> --coordinator --shards H:P,H:P,...
                  [--addr HOST:PORT] [--workers N] [--queue N]
                  [--deadline-ms MS] [--idle-timeout-ms MS]

  --faults SPEC (any command) installs a deterministic fault plan, e.g.
  --faults atomic.fsync=err@2 --fault-seed 7; COCONUT_FAULTS /
  COCONUT_FAULT_SEED do the same from the environment.";

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Generate a dataset file.
    Gen {
        kind: String,
        count: u64,
        len: usize,
        seed: u64,
        out: PathBuf,
    },
    /// Describe a dataset file.
    Info { path: PathBuf },
    /// Build an index over a dataset.
    Build {
        index: String,
        materialized: bool,
        leaf: usize,
        /// Trie node-splitting policy (`fixed` keeps the paper's binary
        /// splits; `adaptive` packs leaves by measured density). Ignored by
        /// `ctree`, whose median packing has no split decision.
        split_policy: SplitPolicyKind,
        memory_mb: u64,
        /// Parallel build shards; defaults to the machine's available
        /// parallelism.
        shards: usize,
        out_dir: PathBuf,
        data: PathBuf,
    },
    /// Query an index.
    Query {
        index: PathBuf,
        data: PathBuf,
        seed: Option<u64>,
        pos: Option<u64>,
        k: usize,
        radius: usize,
        dtw_band: Option<usize>,
        range_eps: Option<f64>,
        approximate: bool,
    },
    /// Stream new series of a growing dataset into an LSM index directory
    /// (creating the index on first use, recovering it afterwards).
    Ingest {
        data: PathBuf,
        index_dir: PathBuf,
        materialized: bool,
        /// Leaf capacity for a *fresh* index (defaults to 2000); an
        /// explicit value that conflicts with a recovered index's manifest
        /// is an error rather than silently ignored.
        leaf: Option<usize>,
        /// Split policy for a *fresh* index; like `leaf`, an explicit value
        /// conflicting with a recovered manifest is an error.
        split_policy: Option<SplitPolicyKind>,
        /// Compaction policy family for a *fresh* index; like
        /// `split_policy`, an explicit value conflicting with a recovered
        /// manifest is an error.
        compaction: Option<CompactionPolicyKind>,
        /// Number of concurrent ingest writers (group-committed); 1 keeps
        /// the classic single-writer path.
        writers: usize,
        memory_mb: u64,
        /// Ingest the uncovered tail in batches of this many series (one
        /// run per batch); `None` means one run for the whole tail.
        batch: Option<u64>,
        /// Cap on live runs (tiered-policy read-amplification bound).
        max_runs: Option<usize>,
    },
    /// Merge every run of an LSM index directory into one.
    Compact { data: PathBuf, index_dir: PathBuf },
    /// Checksum-verify every leaf of every run of an LSM index directory,
    /// reporting per-run results; `--quarantine` moves damaged runs (and
    /// their suffix, to keep the covered prefix contiguous) aside so the
    /// index keeps serving the verified prefix.
    Scrub {
        data: PathBuf,
        index_dir: PathBuf,
        quarantine: bool,
    },
    /// Serve queries over TCP from an LSM index directory (creating the
    /// index on first use, recovering it afterwards), as a single node, a
    /// shard worker, or a coordinator over shard workers.
    Serve {
        data: PathBuf,
        /// Index directory; required except in coordinator mode, which
        /// holds no local index.
        index_dir: Option<PathBuf>,
        /// Bind address; port 0 picks a free port.
        addr: String,
        workers: usize,
        queue: usize,
        /// Default per-query deadline when a request sets none.
        deadline_ms: Option<u64>,
        /// Close connections that send nothing for this long (`None` =
        /// keep idle connections open indefinitely).
        idle_timeout_ms: Option<u64>,
        /// Ingest this dataset prefix before accepting connections
        /// (`None` = serve whatever the recovered index already covers).
        initial: Option<u64>,
        leaf: Option<usize>,
        /// Split policy for a *fresh* index (see `Ingest::split_policy`).
        split_policy: Option<SplitPolicyKind>,
        /// Compaction policy family for a *fresh* index (see
        /// `Ingest::compaction`).
        compaction: Option<CompactionPolicyKind>,
        memory_mb: u64,
        /// Shard-worker mode: serve one key-range slice, assigned by a
        /// coordinator's `BUILD` request (recovered from the index
        /// directory after a restart).
        shard: bool,
        /// Coordinator mode: the shard workers' addresses in slice order
        /// (non-empty enables the mode).
        shards: Vec<String>,
    },
    /// Print usage.
    Help,
}

/// Split argv into `--key value` / `--flag` options and positionals.
fn split(argv: &[String]) -> Result<(HashMap<String, String>, Vec<String>), String> {
    const FLAGS: &[&str] = &[
        "--materialized",
        "--approximate",
        "--shard",
        "--coordinator",
        "--quarantine",
        "--help",
        "-h",
    ];
    let mut opts = HashMap::new();
    let mut pos = Vec::new();
    let mut i = 0;
    while i < argv.len() {
        let a = &argv[i];
        if FLAGS.contains(&a.as_str()) {
            opts.insert(a.clone(), String::from("true"));
            i += 1;
        } else if let Some(key) = a.strip_prefix("--") {
            let value = argv
                .get(i + 1)
                .ok_or_else(|| format!("missing value for --{key}"))?;
            opts.insert(a.clone(), value.clone());
            i += 2;
        } else {
            pos.push(a.clone());
            i += 1;
        }
    }
    Ok((opts, pos))
}

fn req<'a>(opts: &'a HashMap<String, String>, key: &str) -> Result<&'a str, String> {
    opts.get(key)
        .map(|s| s.as_str())
        .ok_or_else(|| format!("missing required option {key}"))
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("invalid {what}: '{s}'"))
}

/// Parse `--split-policy`, surfacing the typed core error (which lists the
/// valid options) as the parse failure.
fn parse_policy(opts: &HashMap<String, String>) -> Result<Option<SplitPolicyKind>, String> {
    opts.get("--split-policy")
        .map(|s| s.parse::<SplitPolicyKind>().map_err(|e| e.to_string()))
        .transpose()
}

/// Parse `--compaction` the same way: the typed core error names the valid
/// policy families.
fn parse_compaction(
    opts: &HashMap<String, String>,
) -> Result<Option<CompactionPolicyKind>, String> {
    opts.get("--compaction")
        .map(|s| s.parse::<CompactionPolicyKind>().map_err(|e| e.to_string()))
        .transpose()
}

/// Strip `--faults SPEC` / `--fault-seed N` (valid before any command)
/// from `argv`, returning the spec and seed when a spec was given. Kept
/// separate from [`parse`] so the fault plan installs once in `main`
/// before command dispatch.
pub fn take_fault_options(argv: &mut Vec<String>) -> Result<Option<(String, u64)>, String> {
    let mut spec = None;
    let mut seed = 0u64;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--faults" => {
                spec = Some(
                    argv.get(i + 1)
                        .cloned()
                        .ok_or("missing value for --faults")?,
                );
                argv.drain(i..i + 2);
            }
            "--fault-seed" => {
                let v = argv
                    .get(i + 1)
                    .cloned()
                    .ok_or("missing value for --fault-seed")?;
                seed = parse_num(&v, "fault-seed")?;
                argv.drain(i..i + 2);
            }
            _ => i += 1,
        }
    }
    Ok(spec.map(|s| (s, seed)))
}

/// Parse a full command line (without the program name).
pub fn parse(argv: &[String]) -> Result<Command, String> {
    let Some(verb) = argv.first() else {
        return Err("no command given".into());
    };
    if verb == "--help" || verb == "-h" || verb == "help" {
        return Ok(Command::Help);
    }
    let rest = &argv[1..];
    let (opts, pos) = split(rest)?;
    if opts.contains_key("--help") || opts.contains_key("-h") {
        return Ok(Command::Help);
    }
    match verb.as_str() {
        "gen" => {
            let out = pos.first().ok_or("gen: missing output path")?;
            Ok(Command::Gen {
                kind: req(&opts, "--kind")?.to_string(),
                count: parse_num(req(&opts, "--count")?, "count")?,
                len: parse_num(req(&opts, "--len")?, "len")?,
                seed: opts.get("--seed").map_or(Ok(1), |s| parse_num(s, "seed"))?,
                out: PathBuf::from(out),
            })
        }
        "info" => {
            let path = pos.first().ok_or("info: missing dataset path")?;
            Ok(Command::Info {
                path: PathBuf::from(path),
            })
        }
        "build" => {
            let data = pos.first().ok_or("build: missing dataset path")?;
            Ok(Command::Build {
                index: req(&opts, "--index")?.to_string(),
                materialized: opts.contains_key("--materialized"),
                leaf: opts
                    .get("--leaf")
                    .map_or(Ok(2000), |s| parse_num(s, "leaf"))?,
                split_policy: parse_policy(&opts)?.unwrap_or_default(),
                memory_mb: opts
                    .get("--memory-mb")
                    .map_or(Ok(256), |s| parse_num(s, "memory-mb"))?,
                shards: match opts.get("--shards") {
                    Some(s) => {
                        let n: usize = parse_num(s, "shards")?;
                        if n == 0 {
                            return Err("shards must be at least 1".into());
                        }
                        n
                    }
                    None => std::thread::available_parallelism().map_or(1, |n| n.get()),
                },
                out_dir: PathBuf::from(opts.get("--out-dir").map_or(".", |s| s.as_str())),
                data: PathBuf::from(data),
            })
        }
        "query" => {
            let seed = opts
                .get("--seed")
                .map(|s| parse_num(s, "seed"))
                .transpose()?;
            let pos_opt = opts.get("--pos").map(|s| parse_num(s, "pos")).transpose()?;
            if seed.is_none() && pos_opt.is_none() {
                return Err("query: need --seed or --pos".into());
            }
            Ok(Command::Query {
                index: PathBuf::from(req(&opts, "--index")?),
                data: PathBuf::from(req(&opts, "--data")?),
                seed,
                pos: pos_opt,
                k: opts.get("--k").map_or(Ok(1), |s| parse_num(s, "k"))?,
                radius: opts
                    .get("--radius")
                    .map_or(Ok(1), |s| parse_num(s, "radius"))?,
                dtw_band: opts
                    .get("--dtw")
                    .map(|s| parse_num(s, "dtw band"))
                    .transpose()?,
                range_eps: opts
                    .get("--range")
                    .map(|s| parse_num(s, "range eps"))
                    .transpose()?,
                approximate: opts.contains_key("--approximate"),
            })
        }
        "ingest" => Ok(Command::Ingest {
            data: PathBuf::from(req(&opts, "--data")?),
            index_dir: PathBuf::from(req(&opts, "--index-dir")?),
            materialized: opts.contains_key("--materialized"),
            leaf: opts
                .get("--leaf")
                .map(|s| parse_num(s, "leaf"))
                .transpose()?,
            split_policy: parse_policy(&opts)?,
            compaction: parse_compaction(&opts)?,
            writers: match opts.get("--writers") {
                Some(s) => {
                    let n: usize = parse_num(s, "writers")?;
                    if n == 0 {
                        return Err("writers must be at least 1".into());
                    }
                    n
                }
                None => 1,
            },
            memory_mb: opts
                .get("--memory-mb")
                .map_or(Ok(256), |s| parse_num(s, "memory-mb"))?,
            batch: match opts.get("--batch") {
                Some(s) => {
                    let n: u64 = parse_num(s, "batch")?;
                    if n == 0 {
                        return Err("batch must be at least 1".into());
                    }
                    Some(n)
                }
                None => None,
            },
            max_runs: match opts.get("--max-runs") {
                Some(s) => {
                    let n: usize = parse_num(s, "max-runs")?;
                    if n == 0 {
                        return Err("max-runs must be at least 1".into());
                    }
                    Some(n)
                }
                None => None,
            },
        }),
        "compact" => Ok(Command::Compact {
            data: PathBuf::from(req(&opts, "--data")?),
            index_dir: PathBuf::from(req(&opts, "--index-dir")?),
        }),
        "scrub" => Ok(Command::Scrub {
            data: PathBuf::from(req(&opts, "--data")?),
            index_dir: PathBuf::from(req(&opts, "--index-dir")?),
            quarantine: opts.contains_key("--quarantine"),
        }),
        "serve" => {
            let shard = opts.contains_key("--shard");
            let coordinator = opts.contains_key("--coordinator");
            if shard && coordinator {
                return Err("serve: --shard and --coordinator are mutually exclusive".into());
            }
            let shards: Vec<String> = opts
                .get("--shards")
                .map(|s| {
                    s.split(',')
                        .map(str::trim)
                        .filter(|a| !a.is_empty())
                        .map(String::from)
                        .collect()
                })
                .unwrap_or_default();
            if coordinator && shards.is_empty() {
                return Err("serve: --coordinator needs --shards host:port,...".into());
            }
            if !coordinator && !shards.is_empty() {
                return Err("serve: --shards only makes sense with --coordinator".into());
            }
            let index_dir = if coordinator {
                if opts.contains_key("--index-dir") {
                    return Err(
                        "serve: a coordinator holds no local index; drop --index-dir".into(),
                    );
                }
                None
            } else {
                Some(PathBuf::from(req(&opts, "--index-dir")?))
            };
            if shard && opts.contains_key("--initial") {
                return Err(
                    "serve: a shard worker's slice is assigned by the coordinator's BUILD; \
                     drop --initial"
                        .into(),
                );
            }
            Ok(Command::Serve {
                data: PathBuf::from(req(&opts, "--data")?),
                index_dir,
                addr: opts
                    .get("--addr")
                    .map_or("127.0.0.1:6381", |s| s.as_str())
                    .to_string(),
                workers: match opts.get("--workers") {
                    Some(s) => {
                        let n: usize = parse_num(s, "workers")?;
                        if n == 0 {
                            return Err("workers must be at least 1".into());
                        }
                        n
                    }
                    None => std::thread::available_parallelism().map_or(4, |n| n.get()),
                },
                queue: opts
                    .get("--queue")
                    .map_or(Ok(64), |s| parse_num(s, "queue"))?,
                deadline_ms: opts
                    .get("--deadline-ms")
                    .map(|s| parse_num(s, "deadline-ms"))
                    .transpose()?,
                idle_timeout_ms: opts
                    .get("--idle-timeout-ms")
                    .map(|s| parse_num(s, "idle-timeout-ms"))
                    .transpose()?,
                initial: opts
                    .get("--initial")
                    .map(|s| parse_num(s, "initial"))
                    .transpose()?,
                leaf: opts
                    .get("--leaf")
                    .map(|s| parse_num(s, "leaf"))
                    .transpose()?,
                split_policy: parse_policy(&opts)?,
                compaction: parse_compaction(&opts)?,
                memory_mb: opts
                    .get("--memory-mb")
                    .map_or(Ok(256), |s| parse_num(s, "memory-mb"))?,
                shard,
                shards,
            })
        }
        other => Err(format!("unknown command '{other}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_gen() {
        let c = parse(&argv(
            "gen --kind seismic --count 100 --len 64 --seed 9 out.ds",
        ))
        .unwrap();
        assert_eq!(
            c,
            Command::Gen {
                kind: "seismic".into(),
                count: 100,
                len: 64,
                seed: 9,
                out: PathBuf::from("out.ds"),
            }
        );
    }

    #[test]
    fn gen_defaults_seed() {
        let c = parse(&argv("gen --kind randomwalk --count 5 --len 8 o.ds")).unwrap();
        let Command::Gen { seed, .. } = c else {
            panic!()
        };
        assert_eq!(seed, 1);
    }

    #[test]
    fn parses_build_with_flags() {
        let c = parse(&argv(
            "build --index ctree --materialized --leaf 100 --out-dir /tmp x.ds",
        ))
        .unwrap();
        let Command::Build {
            index,
            materialized,
            leaf,
            shards,
            out_dir,
            data,
            ..
        } = c
        else {
            panic!()
        };
        assert_eq!(index, "ctree");
        assert!(materialized);
        assert_eq!(leaf, 100);
        assert!(shards >= 1, "defaults to available parallelism");
        assert_eq!(out_dir, PathBuf::from("/tmp"));
        assert_eq!(data, PathBuf::from("x.ds"));
    }

    #[test]
    fn parses_build_shards() {
        let c = parse(&argv("build --index ctree --shards 4 x.ds")).unwrap();
        let Command::Build { shards, .. } = c else {
            panic!()
        };
        assert_eq!(shards, 4);
        assert!(parse(&argv("build --index ctree --shards 0 x.ds")).is_err());
        assert!(parse(&argv("build --index ctree --shards nope x.ds")).is_err());
    }

    #[test]
    fn parses_query_variants() {
        let c = parse(&argv(
            "query --index i.idx --data d.ds --seed 3 --k 5 --dtw 10",
        ))
        .unwrap();
        let Command::Query {
            seed,
            k,
            dtw_band,
            range_eps,
            approximate,
            ..
        } = c
        else {
            panic!()
        };
        assert_eq!(seed, Some(3));
        assert_eq!(k, 5);
        assert_eq!(dtw_band, Some(10));
        assert_eq!(range_eps, None);
        assert!(!approximate);

        let c = parse(&argv(
            "query --index i.idx --data d.ds --pos 7 --range 2.5 --approximate",
        ))
        .unwrap();
        let Command::Query {
            pos,
            range_eps,
            approximate,
            ..
        } = c
        else {
            panic!()
        };
        assert_eq!(pos, Some(7));
        assert_eq!(range_eps, Some(2.5));
        assert!(approximate);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&argv("")).is_err());
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("gen --kind x --count abc --len 8 o.ds")).is_err());
        assert!(parse(&argv("gen --kind x --count 5 o.ds")).is_err()); // missing --len
        assert!(parse(&argv("query --index i --data d")).is_err()); // no seed/pos
        assert!(parse(&argv("gen --kind")).is_err()); // dangling option
    }

    #[test]
    fn parses_ingest_and_compact() {
        let c = parse(&argv(
            "ingest --data d.ds --index-dir ./lsm --batch 500 --max-runs 4 --leaf 64",
        ))
        .unwrap();
        assert_eq!(
            c,
            Command::Ingest {
                data: PathBuf::from("d.ds"),
                index_dir: PathBuf::from("./lsm"),
                materialized: false,
                leaf: Some(64),
                split_policy: None,
                compaction: None,
                writers: 1,
                memory_mb: 256,
                batch: Some(500),
                max_runs: Some(4),
            }
        );
        let c = parse(&argv("ingest --data d.ds --index-dir ./lsm --materialized")).unwrap();
        let Command::Ingest {
            materialized,
            batch,
            max_runs,
            leaf,
            ..
        } = c
        else {
            panic!()
        };
        assert!(materialized);
        assert_eq!(batch, None);
        assert_eq!(max_runs, None);
        assert_eq!(leaf, None);

        let c = parse(&argv("compact --data d.ds --index-dir ./lsm")).unwrap();
        assert_eq!(
            c,
            Command::Compact {
                data: PathBuf::from("d.ds"),
                index_dir: PathBuf::from("./lsm"),
            }
        );

        // Missing/invalid options fail cleanly.
        assert!(parse(&argv("ingest --data d.ds")).is_err()); // no --index-dir
        assert!(parse(&argv("ingest --index-dir x")).is_err()); // no --data
        assert!(parse(&argv("ingest --data d --index-dir x --batch 0")).is_err());
        assert!(parse(&argv("ingest --data d --index-dir x --max-runs 0")).is_err());
        assert!(parse(&argv("compact --data d.ds")).is_err());
    }

    #[test]
    fn parses_serve() {
        let c = parse(&argv(
            "serve --data d.ds --index-dir ./lsm --addr 0.0.0.0:7000 \
             --workers 8 --queue 32 --deadline-ms 250 --idle-timeout-ms 30000 \
             --initial 5000",
        ))
        .unwrap();
        assert_eq!(
            c,
            Command::Serve {
                data: PathBuf::from("d.ds"),
                index_dir: Some(PathBuf::from("./lsm")),
                addr: "0.0.0.0:7000".into(),
                workers: 8,
                queue: 32,
                deadline_ms: Some(250),
                idle_timeout_ms: Some(30000),
                initial: Some(5000),
                leaf: None,
                split_policy: None,
                compaction: None,
                memory_mb: 256,
                shard: false,
                shards: vec![],
            }
        );
        let c = parse(&argv("serve --data d.ds --index-dir ./lsm")).unwrap();
        let Command::Serve {
            addr,
            workers,
            queue,
            deadline_ms,
            initial,
            ..
        } = c
        else {
            panic!()
        };
        assert_eq!(addr, "127.0.0.1:6381");
        assert!(workers >= 1, "defaults to available parallelism");
        assert_eq!(queue, 64);
        assert_eq!(deadline_ms, None);
        assert_eq!(initial, None);

        assert!(parse(&argv("serve --data d.ds")).is_err()); // no --index-dir
        assert!(parse(&argv("serve --index-dir x")).is_err()); // no --data
        assert!(parse(&argv("serve --data d --index-dir x --workers 0")).is_err());
        assert!(parse(&argv("serve --data d --index-dir x --workers abc")).is_err());
    }

    #[test]
    fn parses_serve_shard_and_coordinator() {
        let c = parse(&argv("serve --data d.ds --index-dir ./s0 --shard")).unwrap();
        let Command::Serve { shard, shards, .. } = c else {
            panic!()
        };
        assert!(shard);
        assert!(shards.is_empty());

        let c = parse(&argv(
            "serve --data d.ds --coordinator --shards 127.0.0.1:7001,127.0.0.1:7002",
        ))
        .unwrap();
        let Command::Serve {
            shard,
            shards,
            index_dir,
            ..
        } = c
        else {
            panic!()
        };
        assert!(!shard);
        assert_eq!(shards, vec!["127.0.0.1:7001", "127.0.0.1:7002"]);
        assert_eq!(index_dir, None);

        // Conflicting or incomplete mode selections fail cleanly.
        assert!(parse(&argv(
            "serve --data d --index-dir x --shard --coordinator y"
        ))
        .is_err());
        assert!(parse(&argv("serve --data d --coordinator")).is_err()); // no --shards
        assert!(parse(&argv("serve --data d --index-dir x --shards 1.2.3.4:1")).is_err());
        assert!(parse(&argv(
            "serve --data d --coordinator --shards 1.2.3.4:1 --index-dir x"
        ))
        .is_err());
        assert!(parse(&argv("serve --data d --index-dir x --shard --initial 100")).is_err());
    }

    #[test]
    fn parses_split_policy() {
        // Build defaults to fixed; an explicit value is honoured.
        let c = parse(&argv("build --index ctrie x.ds")).unwrap();
        let Command::Build { split_policy, .. } = c else {
            panic!()
        };
        assert_eq!(split_policy, SplitPolicyKind::Fixed);
        let c = parse(&argv("build --index ctrie --split-policy adaptive x.ds")).unwrap();
        let Command::Build { split_policy, .. } = c else {
            panic!()
        };
        assert_eq!(split_policy, SplitPolicyKind::Adaptive);

        // Ingest and serve keep "not given" distinct from "fixed" so the
        // recovered-manifest conflict check only fires on explicit flags.
        let c = parse(&argv(
            "ingest --data d.ds --index-dir ./lsm --split-policy fixed",
        ))
        .unwrap();
        let Command::Ingest { split_policy, .. } = c else {
            panic!()
        };
        assert_eq!(split_policy, Some(SplitPolicyKind::Fixed));
        let c = parse(&argv(
            "serve --data d.ds --index-dir ./lsm --split-policy adaptive",
        ))
        .unwrap();
        let Command::Serve { split_policy, .. } = c else {
            panic!()
        };
        assert_eq!(split_policy, Some(SplitPolicyKind::Adaptive));

        // Unknown values fail with a message naming the valid options.
        let err = parse(&argv("build --index ctrie --split-policy median x.ds")).unwrap_err();
        assert!(err.contains("median"), "{err}");
        assert!(err.contains("fixed") && err.contains("adaptive"), "{err}");
    }

    #[test]
    fn parses_compaction_and_writers() {
        // "Not given" stays distinct from "tiered" so the
        // recovered-manifest conflict check only fires on explicit flags.
        let c = parse(&argv("ingest --data d.ds --index-dir ./lsm")).unwrap();
        let Command::Ingest {
            compaction,
            writers,
            ..
        } = c
        else {
            panic!()
        };
        assert_eq!(compaction, None);
        assert_eq!(writers, 1);

        let c = parse(&argv(
            "ingest --data d.ds --index-dir ./lsm --compaction leveled --writers 4",
        ))
        .unwrap();
        let Command::Ingest {
            compaction,
            writers,
            ..
        } = c
        else {
            panic!()
        };
        assert_eq!(compaction, Some(CompactionPolicyKind::Leveled));
        assert_eq!(writers, 4);

        let c = parse(&argv(
            "serve --data d.ds --index-dir ./lsm --compaction tiered",
        ))
        .unwrap();
        let Command::Serve { compaction, .. } = c else {
            panic!()
        };
        assert_eq!(compaction, Some(CompactionPolicyKind::Tiered));

        // Unknown values fail with a message naming the valid families.
        let err = parse(&argv("ingest --data d --index-dir x --compaction lazy")).unwrap_err();
        assert!(err.contains("lazy"), "{err}");
        assert!(err.contains("tiered") && err.contains("leveled"), "{err}");
        assert!(parse(&argv("ingest --data d --index-dir x --writers 0")).is_err());
    }

    #[test]
    fn help_everywhere() {
        assert_eq!(parse(&argv("--help")).unwrap(), Command::Help);
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse(&argv("build --help")).unwrap(), Command::Help);
    }
}
