//! Command implementations for the `coconut` CLI.

use std::sync::Arc;
use std::time::Instant;

use coconut_core::manifest::Manifest;
use coconut_core::{
    BuildOptions, CoconutTree, CoconutTrie, CompactionPolicyKind, IndexConfig, LsmCoconut,
};
use coconut_series::dataset::{write_dataset, Dataset};
use coconut_series::distance::znormalize;
use coconut_series::gen::{AstronomyGen, Generator, RandomWalkGen, SeismicGen};
use coconut_series::index::SeriesIndex;
use coconut_series::Value;
use coconut_storage::{Error, IoStats, Result};
use coconut_summary::SaxConfig;

use crate::args::Command;

/// Execute a parsed command.
pub fn run(cmd: Command) -> Result<()> {
    match cmd {
        Command::Help => {
            println!("{}", crate::args::USAGE);
            Ok(())
        }
        Command::Gen {
            kind,
            count,
            len,
            seed,
            out,
        } => {
            let stats = Arc::new(IoStats::new());
            let mut generator: Box<dyn Generator> = match kind.as_str() {
                "randomwalk" => Box::new(RandomWalkGen::new(seed)),
                "seismic" => Box::new(SeismicGen::new(seed)),
                "astronomy" => Box::new(AstronomyGen::new(seed)),
                other => {
                    return Err(Error::invalid(format!(
                        "unknown generator '{other}' (randomwalk|seismic|astronomy)"
                    )))
                }
            };
            let t0 = Instant::now();
            write_dataset(&out, generator.as_mut(), count, len, &stats)?;
            println!(
                "wrote {count} {kind} series of {len} points to {} in {:.2}s",
                out.display(),
                t0.elapsed().as_secs_f64()
            );
            Ok(())
        }
        Command::Info { path } => {
            let stats = Arc::new(IoStats::new());
            let ds = Dataset::open(&path, stats)?;
            println!("dataset       {}", path.display());
            println!("series        {}", ds.len());
            println!("series length {}", ds.series_len());
            println!("z-normalized  {}", ds.znormalized());
            println!(
                "payload bytes {} ({:.1} MiB)",
                ds.payload_bytes(),
                ds.payload_bytes() as f64 / (1 << 20) as f64
            );
            Ok(())
        }
        Command::Build {
            index,
            materialized,
            leaf,
            split_policy,
            memory_mb,
            shards,
            out_dir,
            data,
        } => {
            let stats = Arc::new(IoStats::new());
            let ds = Dataset::open(&data, Arc::clone(&stats))?;
            std::fs::create_dir_all(&out_dir)?;
            let config = IndexConfig {
                sax: SaxConfig::default_for_len(ds.series_len()),
                leaf_capacity: leaf,
                fill_factor: 1.0,
                internal_fanout: 64,
                split_policy,
            };
            let opts = BuildOptions {
                memory_bytes: memory_mb << 20,
                materialized,
                threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
                shards: shards.max(1),
            };
            let shard_count = opts.shards;
            let t0 = Instant::now();
            let (name, path, leaves, fill, oversized, bytes): (String, _, _, _, _, _) =
                match index.as_str() {
                    "ctree" => {
                        let t = CoconutTree::build(&ds, &config, &out_dir, opts)?;
                        (
                            t.name(),
                            t.index_path().to_path_buf(),
                            t.leaf_count(),
                            t.avg_leaf_fill(),
                            t.oversized_leaf_count(),
                            t.disk_bytes(),
                        )
                    }
                    "ctrie" => {
                        let t = CoconutTrie::build(&ds, &config, &out_dir, opts)?;
                        (
                            t.name(),
                            t.index_path().to_path_buf(),
                            t.leaf_count(),
                            t.avg_leaf_fill(),
                            t.oversized_leaf_count(),
                            t.disk_bytes(),
                        )
                    }
                    other => {
                        return Err(Error::invalid(format!(
                            "unknown index '{other}' (ctree|ctrie)"
                        )))
                    }
                };
            let io = stats.snapshot();
            println!(
                "built {name} in {:.2}s ({} build shard{})",
                t0.elapsed().as_secs_f64(),
                shard_count,
                if shard_count == 1 { "" } else { "s" }
            );
            println!("index file    {}", path.display());
            println!(
                "leaves        {leaves} (avg fill {:.0}%, {oversized} oversized, {} split)",
                fill * 100.0,
                config.split_policy
            );
            println!("size          {:.1} MiB", bytes as f64 / (1 << 20) as f64);
            println!(
                "io            {} sequential / {} random ops, {:.1} MiB moved",
                io.total_ops() - io.random_ops(),
                io.random_ops(),
                io.total_bytes() as f64 / (1 << 20) as f64
            );
            Ok(())
        }
        Command::Query {
            index,
            data,
            seed,
            pos,
            k,
            radius,
            dtw_band,
            range_eps,
            approximate,
        } => {
            let stats = Arc::new(IoStats::new());
            let ds = Dataset::open(&data, Arc::clone(&stats))?;
            let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
            let query = make_query(&ds, seed, pos)?;

            // Try tree first, then trie (each checks its header).
            enum AnyIndex {
                Tree(CoconutTree),
                Trie(CoconutTrie),
            }
            let idx = match CoconutTree::open(&index, &ds, threads) {
                Ok(t) => AnyIndex::Tree(t),
                Err(_) => AnyIndex::Trie(CoconutTrie::open(&index, &ds, threads)?),
            };

            let t0 = Instant::now();
            if let Some(eps) = range_eps {
                let (hits, qstats) = match &idx {
                    AnyIndex::Tree(t) => t.exact_range(&query, eps)?,
                    AnyIndex::Trie(_) => {
                        return Err(Error::invalid("range queries require a ctree index"))
                    }
                };
                println!("{} series within distance {eps}:", hits.len());
                for h in hits.iter().take(50) {
                    println!("  #{:<10} dist {:.4}", h.pos, h.dist);
                }
                report_time(t0, &qstats);
            } else if let Some(band) = dtw_band {
                let (ans, qstats) = match &idx {
                    AnyIndex::Tree(t) => t.exact_search_dtw(&query, band)?,
                    AnyIndex::Trie(_) => {
                        return Err(Error::invalid("DTW queries require a ctree index"))
                    }
                };
                println!("DTW(band {band}) nearest: #{} at {:.4}", ans.pos, ans.dist);
                report_time(t0, &qstats);
            } else if approximate {
                let ans = match &idx {
                    AnyIndex::Tree(t) => t.approximate_search(&query, radius)?,
                    AnyIndex::Trie(t) => t.approximate_search(&query, radius)?,
                };
                println!(
                    "approximate nearest (radius {radius}): #{} at {:.4}",
                    ans.pos, ans.dist
                );
                println!("time {:.1} ms", t0.elapsed().as_secs_f64() * 1e3);
            } else if k > 1 {
                let (hits, qstats) = match &idx {
                    AnyIndex::Tree(t) => t.exact_knn(&query, k)?,
                    AnyIndex::Trie(_) => {
                        return Err(Error::invalid("k-NN queries require a ctree index"))
                    }
                };
                println!("top-{k} nearest:");
                for (rank, h) in hits.iter().enumerate() {
                    println!("  {}. #{:<10} dist {:.4}", rank + 1, h.pos, h.dist);
                }
                report_time(t0, &qstats);
            } else {
                let (ans, qstats) = match &idx {
                    AnyIndex::Tree(t) => t.exact_search_with_radius(&query, radius)?,
                    AnyIndex::Trie(t) => t.exact_search_with_radius(&query, radius)?,
                };
                println!("exact nearest: #{} at {:.4}", ans.pos, ans.dist);
                report_time(t0, &qstats);
            }
            Ok(())
        }
        Command::Ingest {
            data,
            index_dir,
            materialized,
            leaf,
            split_policy,
            compaction,
            writers,
            memory_mb,
            batch,
            max_runs,
        } => {
            if max_runs.is_some() && compaction == Some(CompactionPolicyKind::Leveled) {
                return Err(Error::invalid(
                    "--max-runs installs a tiered read-amp cap and conflicts with \
                     --compaction leveled; drop one of the two",
                ));
            }
            let stats = Arc::new(IoStats::new());
            let ds = Dataset::open(&data, Arc::clone(&stats))?;
            let (lsm, fresh) = open_or_create_lsm(
                &ds,
                &index_dir,
                materialized,
                leaf,
                split_policy,
                compaction,
                memory_mb,
            )?;
            if let Some(n) = max_runs {
                lsm.set_max_runs(n);
            }
            let already = lsm.covered_end();
            if already > ds.len() {
                return Err(Error::invalid(format!(
                    "index already covers {already} series but the dataset holds {}",
                    ds.len()
                )));
            }
            let t0 = Instant::now();
            let tail = ds.len().saturating_sub(already).max(1);
            if writers > 1 {
                // Multi-writer: each thread claims the next uncovered batch
                // and builds its run concurrently; completed runs are group
                // committed (one manifest fsync per fold).
                let step = batch.unwrap_or_else(|| (tail / (writers as u64 * 4)).max(1));
                let lsm_ref = &lsm;
                let ds_ref = &ds;
                std::thread::scope(|s| -> Result<()> {
                    let handles: Vec<_> = (0..writers)
                        .map(|_| {
                            s.spawn(move || -> Result<()> {
                                let w = lsm_ref.writer();
                                while w.ingest_next(ds_ref, step)?.is_some() {}
                                Ok(())
                            })
                        })
                        .collect();
                    for h in handles {
                        h.join()
                            .map_err(|_| Error::invalid("an ingest writer panicked"))??;
                    }
                    Ok(())
                })?;
            } else {
                let step = batch.unwrap_or(tail);
                let mut upto = already;
                while upto < ds.len() {
                    upto = (upto + step).min(ds.len());
                    lsm.ingest_upto(&ds, upto)?;
                }
            }
            lsm.wait_for_compactions()?;
            let secs = t0.elapsed().as_secs_f64();
            let new = ds.len() - already;
            println!(
                "{} {} series into {} in {secs:.2}s ({:.0} series/s, {} writer{})",
                if fresh { "created;" } else { "recovered;" },
                new,
                index_dir.display(),
                if secs > 0.0 { new as f64 / secs } else { 0.0 },
                writers,
                if writers == 1 { "" } else { "s" }
            );
            println!(
                "covered       0..{} in {} run{} ({} compaction)",
                lsm.covered_end(),
                lsm.run_count(),
                if lsm.run_count() == 1 { "" } else { "s" },
                lsm.compaction_kind()
            );
            let ws = lsm.write_stats();
            println!(
                "commits       {} run{} in {} manifest commit{}; write-amp {:.2}",
                ws.runs_committed,
                if ws.runs_committed == 1 { "" } else { "s" },
                ws.ingest_commits,
                if ws.ingest_commits == 1 { "" } else { "s" },
                lsm.write_amplification()
            );
            println!(
                "size          {:.1} MiB",
                lsm.disk_bytes() as f64 / (1 << 20) as f64
            );
            Ok(())
        }
        Command::Compact { data, index_dir } => {
            let stats = Arc::new(IoStats::new());
            let ds = Dataset::open(&data, Arc::clone(&stats))?;
            let lsm = LsmCoconut::open(&index_dir, &ds, BuildOptions::default())?;
            let before = lsm.run_count();
            let t0 = Instant::now();
            lsm.compact()?;
            println!(
                "compacted {before} run{} into {} in {:.2}s ({} entries)",
                if before == 1 { "" } else { "s" },
                lsm.run_count(),
                t0.elapsed().as_secs_f64(),
                lsm.len()
            );
            Ok(())
        }
        Command::Scrub {
            data,
            index_dir,
            quarantine,
        } => {
            let stats = Arc::new(IoStats::new());
            let ds = Dataset::open(&data, Arc::clone(&stats))?;
            let lsm = LsmCoconut::open(&index_dir, &ds, BuildOptions::default())?;
            let t0 = Instant::now();
            let outcomes = lsm.scrub();
            let mut first_bad: Option<(u64, String)> = None;
            for o in &outcomes {
                match &o.error {
                    None => println!(
                        "run {:>3}  [{}..{})  ok: {} leaves verified{}",
                        o.id,
                        o.start,
                        o.end,
                        o.report.checked,
                        if o.report.unchecked > 0 {
                            format!(" ({} legacy unchecked)", o.report.unchecked)
                        } else {
                            String::new()
                        }
                    ),
                    Some(e) => {
                        println!("run {:>3}  [{}..{})  CORRUPT: {e}", o.id, o.start, o.end);
                        if first_bad.is_none() {
                            first_bad = Some((o.id, e.clone()));
                        }
                    }
                }
            }
            println!(
                "scrubbed {} run{} in {:.2}s",
                outcomes.len(),
                if outcomes.len() == 1 { "" } else { "s" },
                t0.elapsed().as_secs_f64()
            );
            match first_bad {
                None => Ok(()),
                Some((id, reason)) if quarantine => {
                    let new_end = lsm.quarantine_from(id, &reason)?;
                    println!(
                        "quarantined run {id} and its suffix; index now covers ..{new_end} \
                         (moved to {}/quarantine)",
                        index_dir.display()
                    );
                    Ok(())
                }
                Some((id, reason)) => Err(Error::corrupt(format!(
                    "run {id}: {reason} (rerun with --quarantine to move it aside)"
                ))),
            }
        }
        Command::Serve {
            data,
            index_dir,
            addr,
            workers,
            queue,
            deadline_ms,
            idle_timeout_ms,
            initial,
            leaf,
            split_policy,
            compaction,
            memory_mb,
            shard,
            shards,
        } => {
            let stats = Arc::new(IoStats::new());
            let ds = Dataset::open(&data, Arc::clone(&stats))?;
            let default_deadline = deadline_ms.map(std::time::Duration::from_millis);
            let config = coconut_server::ServerConfig {
                addr,
                workers,
                queue,
                default_deadline_ms: deadline_ms,
                idle_timeout_ms,
            };
            if !shards.is_empty() {
                // Coordinator: no local index, just the partition map and
                // the shard clients.
                let engine = Arc::new(coconut_server::CoordinatorEngine::new(
                    &shards,
                    ds,
                    coconut_server::ClientConfig::default(),
                    default_deadline,
                )?);
                let server = coconut_server::Server::start(engine, &config)?;
                println!(
                    "coordinating {} shard{} ({}); serving on {} ({} workers, queue {})",
                    shards.len(),
                    if shards.len() == 1 { "" } else { "s" },
                    shards.join(", "),
                    server.addr(),
                    workers,
                    queue
                );
                println!(
                    "try: printf 'INGEST\\nSHARD-INFO\\n' | nc {} {}",
                    server.addr().ip(),
                    server.addr().port()
                );
                loop {
                    std::thread::sleep(std::time::Duration::from_secs(3600));
                }
            }
            let index_dir =
                index_dir.expect("parser requires --index-dir outside coordinator mode");
            if shard {
                // Shard worker: recover the slice index if one exists,
                // otherwise wait for the coordinator's BUILD to assign it.
                let opts = BuildOptions {
                    memory_bytes: memory_mb << 20,
                    materialized: false,
                    threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
                    shards: 1,
                };
                let idx_config = IndexConfig {
                    sax: SaxConfig::default_for_len(ds.series_len()),
                    leaf_capacity: leaf.unwrap_or(2000),
                    fill_factor: 1.0,
                    internal_fanout: 64,
                    split_policy: split_policy.unwrap_or_default(),
                };
                let fresh = !Manifest::path_in(&index_dir).exists();
                let recovered = if fresh {
                    None
                } else {
                    Some(Arc::new(LsmCoconut::open(&index_dir, &ds, opts.clone())?))
                };
                let status = match &recovered {
                    Some(lsm) => format!(
                        "recovered slice {}..{} (covered {})",
                        lsm.base(),
                        lsm.covered_end().max(lsm.base()),
                        lsm.covered_end()
                    ),
                    None => "unassigned (waiting for BUILD)".to_string(),
                };
                let engine = Arc::new(coconut_server::Engine::new_shard(
                    ds,
                    &index_dir,
                    idx_config,
                    opts,
                    recovered,
                    default_deadline,
                ));
                let server = coconut_server::Server::start(engine, &config)?;
                // A parseable line so launch scripts can scrape the port.
                println!("SHARD LISTENING {}", server.addr());
                println!("shard worker in {}; {status}", index_dir.display());
                use std::io::Write as _;
                let _ = std::io::stdout().flush();
                loop {
                    std::thread::sleep(std::time::Duration::from_secs(3600));
                }
            }
            let (lsm, fresh) = open_or_create_lsm(
                &ds,
                &index_dir,
                false,
                leaf,
                split_policy,
                compaction,
                memory_mb,
            )?;
            if let Some(n) = initial {
                lsm.ingest_upto(&ds, n.min(ds.len()))?;
            }
            let lsm = Arc::new(lsm);
            let engine = Arc::new(coconut_server::Engine::new(
                Arc::clone(&lsm),
                ds,
                default_deadline,
            ));
            let server = coconut_server::Server::start(engine, &config)?;
            println!(
                "{} index in {}; serving on {} ({} workers, queue {})",
                if fresh { "created" } else { "recovered" },
                index_dir.display(),
                server.addr(),
                workers,
                queue
            );
            println!(
                "covered 0..{} in {} run{}; try: printf 'HEALTH\\n' | nc {} {}",
                lsm.covered_end(),
                lsm.run_count(),
                if lsm.run_count() == 1 { "" } else { "s" },
                server.addr().ip(),
                server.addr().port()
            );
            // Serve until the process is killed; `server` stays in scope
            // (its Drop would shut the listener down on unwind).
            loop {
                std::thread::sleep(std::time::Duration::from_secs(3600));
            }
        }
    }
}

/// Open an existing LSM index directory (recovering its manifest) or
/// create a fresh one. Explicit flags that contradict a recovered
/// manifest's configuration are errors rather than silently ignored.
fn open_or_create_lsm(
    ds: &Dataset,
    index_dir: &std::path::Path,
    materialized: bool,
    leaf: Option<usize>,
    split_policy: Option<coconut_core::SplitPolicyKind>,
    compaction: Option<CompactionPolicyKind>,
    memory_mb: u64,
) -> Result<(LsmCoconut, bool)> {
    let opts = BuildOptions {
        memory_bytes: memory_mb << 20,
        materialized,
        threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
        shards: 1,
    };
    // First use creates the index; later uses recover the manifest (and
    // tolerate a crash of the previous process).
    let fresh = !Manifest::path_in(index_dir).exists();
    let lsm = if fresh {
        let config = IndexConfig {
            sax: SaxConfig::default_for_len(ds.series_len()),
            leaf_capacity: leaf.unwrap_or(2000),
            fill_factor: 1.0,
            internal_fanout: 64,
            split_policy: split_policy.unwrap_or_default(),
        };
        LsmCoconut::create(config, opts, index_dir, 0, compaction.unwrap_or_default())?
    } else {
        let lsm = LsmCoconut::open(index_dir, ds, opts)?;
        if materialized && !lsm.is_materialized() {
            return Err(Error::invalid(format!(
                "--materialized conflicts with the recovered index in {} \
                 (built non-materialized); use a fresh --index-dir",
                index_dir.display()
            )));
        }
        if let Some(l) = leaf {
            let have = lsm.config().leaf_capacity;
            if l != have {
                return Err(Error::invalid(format!(
                    "--leaf {l} conflicts with the recovered index in {} \
                     (built with leaf capacity {have}); omit --leaf or use \
                     a fresh --index-dir",
                    index_dir.display()
                )));
            }
        }
        if let Some(p) = split_policy {
            let have = lsm.config().split_policy;
            if p != have {
                return Err(Error::invalid(format!(
                    "--split-policy {p} conflicts with the recovered index \
                     in {} (built with the {have} policy); omit \
                     --split-policy or use a fresh --index-dir",
                    index_dir.display()
                )));
            }
        }
        if let Some(c) = compaction {
            let have = lsm.compaction_kind();
            if c != have {
                return Err(Error::invalid(format!(
                    "--compaction {c} conflicts with the recovered index in \
                     {} (grown under the {have} policy); omit --compaction \
                     or use a fresh --index-dir",
                    index_dir.display()
                )));
            }
        }
        lsm
    };
    Ok((lsm, fresh))
}

fn make_query(ds: &Dataset, seed: Option<u64>, pos: Option<u64>) -> Result<Vec<Value>> {
    match (seed, pos) {
        (_, Some(p)) => ds.get(p),
        (Some(s), None) => {
            let mut q = RandomWalkGen::new(s).generate(ds.series_len());
            znormalize(&mut q);
            Ok(q)
        }
        (None, None) => Err(Error::invalid("need --seed or --pos")),
    }
}

fn report_time(t0: Instant, qstats: &coconut_series::index::QueryStats) {
    println!(
        "time {:.1} ms  (fetched {} records, pruned {}, {} lower bounds)",
        t0.elapsed().as_secs_f64() * 1e3,
        qstats.records_fetched,
        qstats.pruned,
        qstats.lower_bounds
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconut_storage::TempDir;

    fn gen_cmd(dir: &TempDir, name: &str, count: u64) -> std::path::PathBuf {
        let out = dir.path().join(name);
        run(Command::Gen {
            kind: "randomwalk".into(),
            count,
            len: 64,
            seed: 3,
            out: out.clone(),
        })
        .unwrap();
        out
    }

    #[test]
    fn gen_info_build_query_pipeline() {
        let dir = TempDir::new("cli").unwrap();
        let data = gen_cmd(&dir, "d.ds", 300);
        run(Command::Info { path: data.clone() }).unwrap();

        for index_kind in ["ctree", "ctrie"] {
            let out_dir = dir.path().join(index_kind);
            run(Command::Build {
                index: index_kind.into(),
                materialized: false,
                leaf: 32,
                split_policy: Default::default(),
                memory_mb: 1,
                out_dir: out_dir.clone(),
                data: data.clone(),
                shards: 3,
            })
            .unwrap();
            let idx = std::fs::read_dir(&out_dir)
                .unwrap()
                .map(|e| e.unwrap().path())
                .find(|p| p.extension().is_some_and(|e| e == "idx"))
                .expect("index file created");
            // Exact, approximate, and member queries all succeed.
            run(Command::Query {
                index: idx.clone(),
                data: data.clone(),
                seed: Some(9),
                pos: None,
                k: 1,
                radius: 1,
                dtw_band: None,
                range_eps: None,
                approximate: false,
            })
            .unwrap();
            run(Command::Query {
                index: idx.clone(),
                data: data.clone(),
                seed: None,
                pos: Some(7),
                k: 1,
                radius: 0,
                dtw_band: None,
                range_eps: None,
                approximate: true,
            })
            .unwrap();
        }
    }

    #[test]
    fn tree_only_modes_work_and_trie_rejects_them() {
        let dir = TempDir::new("cli").unwrap();
        let data = gen_cmd(&dir, "d.ds", 200);
        let tree_dir = dir.path().join("t");
        run(Command::Build {
            index: "ctree".into(),
            materialized: false,
            leaf: 32,
            split_policy: Default::default(),
            memory_mb: 1,
            out_dir: tree_dir.clone(),
            data: data.clone(),
            shards: 1,
        })
        .unwrap();
        let tree_idx = std::fs::read_dir(&tree_dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|e| e == "idx"))
            .unwrap();
        let q = |k, dtw, range| Command::Query {
            index: tree_idx.clone(),
            data: data.clone(),
            seed: Some(5),
            pos: None,
            k,
            radius: 1,
            dtw_band: dtw,
            range_eps: range,
            approximate: false,
        };
        run(q(5, None, None)).unwrap(); // k-NN
        run(q(1, Some(4), None)).unwrap(); // DTW
        run(q(1, None, Some(10.0))).unwrap(); // range

        let trie_dir = dir.path().join("tr");
        run(Command::Build {
            index: "ctrie".into(),
            materialized: false,
            leaf: 32,
            split_policy: Default::default(),
            memory_mb: 1,
            out_dir: trie_dir.clone(),
            data: data.clone(),
            shards: 1,
        })
        .unwrap();
        let trie_idx = std::fs::read_dir(&trie_dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|e| e == "idx"))
            .unwrap();
        let bad = Command::Query {
            index: trie_idx,
            data,
            seed: Some(5),
            pos: None,
            k: 1,
            radius: 1,
            dtw_band: Some(4),
            range_eps: None,
            approximate: false,
        };
        assert!(run(bad).is_err());
    }

    #[test]
    fn ingest_then_recover_then_compact_pipeline() {
        let dir = TempDir::new("cli-lsm").unwrap();
        let idx_dir = dir.path().join("lsm");
        let data = gen_cmd(&dir, "d.ds", 240);
        // First ingest creates the index, batching into multiple runs.
        run(Command::Ingest {
            data: data.clone(),
            index_dir: idx_dir.clone(),
            materialized: false,
            leaf: Some(32),
            split_policy: None,
            compaction: None,
            writers: 1,
            memory_mb: 1,
            batch: Some(60),
            max_runs: Some(3),
        })
        .unwrap();
        // A grown dataset: the second ingest recovers and covers the tail
        // (an explicit matching --leaf is fine; a conflicting one is not).
        let data2 = gen_cmd(&dir, "d2.ds", 300);
        assert!(run(Command::Ingest {
            data: data2.clone(),
            index_dir: idx_dir.clone(),
            materialized: false,
            leaf: Some(64),
            split_policy: None,
            compaction: None,
            writers: 1,
            memory_mb: 1,
            batch: None,
            max_runs: None,
        })
        .is_err());
        assert!(run(Command::Ingest {
            data: data2.clone(),
            index_dir: idx_dir.clone(),
            materialized: true,
            leaf: None,
            split_policy: None,
            compaction: None,
            writers: 1,
            memory_mb: 1,
            batch: None,
            max_runs: None,
        })
        .is_err());
        run(Command::Ingest {
            data: data2.clone(),
            index_dir: idx_dir.clone(),
            materialized: false,
            leaf: Some(32),
            split_policy: None,
            compaction: None,
            writers: 1,
            memory_mb: 1,
            batch: None,
            max_runs: None,
        })
        .unwrap();
        // Compact everything into one run.
        run(Command::Compact {
            data: data2.clone(),
            index_dir: idx_dir.clone(),
        })
        .unwrap();
        let stats = Arc::new(IoStats::new());
        let ds = Dataset::open(&data2, Arc::clone(&stats)).unwrap();
        let lsm = LsmCoconut::open(&idx_dir, &ds, BuildOptions::default()).unwrap();
        assert_eq!(lsm.run_count(), 1);
        assert_eq!(lsm.len(), 300);
    }

    #[test]
    fn scrub_reports_clean_then_detects_and_quarantines_rot() {
        let dir = TempDir::new("cli-scrub").unwrap();
        let idx_dir = dir.path().join("lsm");
        let data = gen_cmd(&dir, "d.ds", 240);
        run(Command::Ingest {
            data: data.clone(),
            index_dir: idx_dir.clone(),
            materialized: false,
            leaf: Some(32),
            split_policy: None,
            compaction: None,
            writers: 1,
            memory_mb: 1,
            batch: Some(80),
            max_runs: Some(10),
        })
        .unwrap();
        let scrub = |quarantine| {
            run(Command::Scrub {
                data: data.clone(),
                index_dir: idx_dir.clone(),
                quarantine,
            })
        };
        scrub(false).unwrap();
        // Flip a byte in the last run's leaf region.
        let manifest = Manifest::load(&idx_dir).unwrap();
        let victim = manifest.runs.last().unwrap().clone();
        let file = idx_dir.join(&victim.file);
        let mut bytes = std::fs::read(&file).unwrap();
        bytes[4096 + 11] ^= 0x04;
        std::fs::write(&file, &bytes).unwrap();
        // Without --quarantine the scrub fails with a typed error...
        let err = scrub(false).unwrap_err();
        assert!(err.to_string().contains("--quarantine"), "{err}");
        // ...with it the run is moved aside and the index keeps serving.
        scrub(true).unwrap();
        let stats = Arc::new(IoStats::new());
        let ds = Dataset::open(&data, Arc::clone(&stats)).unwrap();
        let lsm = LsmCoconut::open(&idx_dir, &ds, BuildOptions::default()).unwrap();
        assert_eq!(lsm.covered_end(), victim.start);
        assert!(idx_dir
            .join(coconut_core::QUARANTINE_DIR)
            .join(format!("run-{}", victim.id))
            .exists());
        scrub(false).unwrap();
    }

    #[test]
    fn split_policy_builds_and_recover_conflicts() {
        let dir = TempDir::new("cli-policy").unwrap();
        let data = gen_cmd(&dir, "d.ds", 240);

        // An adaptive trie build works end-to-end through the CLI.
        let out_dir = dir.path().join("adaptive");
        run(Command::Build {
            index: "ctrie".into(),
            materialized: false,
            leaf: 32,
            split_policy: coconut_core::SplitPolicyKind::Adaptive,
            memory_mb: 1,
            out_dir: out_dir.clone(),
            data: data.clone(),
            shards: 2,
        })
        .unwrap();
        let idx = std::fs::read_dir(&out_dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|e| e == "idx"))
            .unwrap();
        run(Command::Query {
            index: idx,
            data: data.clone(),
            seed: Some(9),
            pos: None,
            k: 1,
            radius: 1,
            dtw_band: None,
            range_eps: None,
            approximate: false,
        })
        .unwrap();

        // An LSM directory created with the adaptive policy recovers with
        // no flag or a matching flag, but rejects a conflicting one.
        let idx_dir = dir.path().join("lsm");
        let ingest = |split_policy| Command::Ingest {
            data: data.clone(),
            index_dir: idx_dir.clone(),
            materialized: false,
            leaf: None,
            split_policy,
            compaction: None,
            writers: 1,
            memory_mb: 1,
            batch: None,
            max_runs: None,
        };
        run(ingest(Some(coconut_core::SplitPolicyKind::Adaptive))).unwrap();
        run(ingest(None)).unwrap();
        run(ingest(Some(coconut_core::SplitPolicyKind::Adaptive))).unwrap();
        let err = run(ingest(Some(coconut_core::SplitPolicyKind::Fixed))).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("--split-policy"), "{msg}");
        assert!(msg.contains("adaptive"), "{msg}");
    }

    #[test]
    fn compaction_policy_and_multi_writer_ingest() {
        let dir = TempDir::new("cli-compaction").unwrap();
        let idx_dir = dir.path().join("lsm");
        let data = gen_cmd(&dir, "d.ds", 240);
        let ingest = |compaction, writers, max_runs| Command::Ingest {
            data: data.clone(),
            index_dir: idx_dir.clone(),
            materialized: false,
            leaf: Some(32),
            split_policy: None,
            compaction,
            writers,
            memory_mb: 1,
            batch: Some(40),
            max_runs,
        };
        // --max-runs installs a tiered cap; it cannot combine with leveled.
        assert!(run(ingest(Some(CompactionPolicyKind::Leveled), 1, Some(3))).is_err());
        // A leveled, multi-writer ingest creates the index...
        run(ingest(Some(CompactionPolicyKind::Leveled), 4, None)).unwrap();
        // ...recovery accepts no flag or a matching one, rejects conflicts.
        run(ingest(None, 1, None)).unwrap();
        run(ingest(Some(CompactionPolicyKind::Leveled), 2, None)).unwrap();
        let err = run(ingest(Some(CompactionPolicyKind::Tiered), 1, None)).unwrap_err();
        assert!(err.to_string().contains("--compaction"), "{err}");
        // The grown index is whole and remembers its policy family.
        let stats = Arc::new(IoStats::new());
        let ds = Dataset::open(&data, Arc::clone(&stats)).unwrap();
        let lsm = LsmCoconut::open(&idx_dir, &ds, BuildOptions::default()).unwrap();
        assert_eq!(lsm.covered_end(), 240);
        assert_eq!(lsm.compaction_kind(), CompactionPolicyKind::Leveled);
    }

    #[test]
    fn bad_inputs_fail_cleanly() {
        let dir = TempDir::new("cli").unwrap();
        // Unknown generator.
        assert!(run(Command::Gen {
            kind: "weather".into(),
            count: 1,
            len: 8,
            seed: 1,
            out: dir.path().join("x.ds"),
        })
        .is_err());
        // Missing dataset.
        assert!(run(Command::Info {
            path: dir.path().join("nope.ds")
        })
        .is_err());
        // Unknown index kind.
        let data = gen_cmd(&dir, "d.ds", 10);
        assert!(run(Command::Build {
            index: "btree".into(),
            materialized: false,
            leaf: 8,
            split_policy: Default::default(),
            memory_mb: 1,
            out_dir: dir.path().to_path_buf(),
            data,
            shards: 1,
        })
        .is_err());
    }
}
