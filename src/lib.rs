//! # Coconut — scalable bottom-up data series indexes
//!
//! This crate is the facade of a workspace that reproduces
//! *"Coconut: A Scalable Bottom-Up Approach for Building Data Series
//! Indexes"* (Kondylakis, Dayan, Zoumpatianos, Palpanas — VLDB 2018).
//!
//! It re-exports the member crates:
//!
//! * [`series`] — data series model, distances, dataset files, generators.
//! * [`summary`] — PAA / SAX / iSAX summarizations and the paper's sortable
//!   (bit-interleaved, z-ordered) summarization.
//! * [`storage`] — disk-access-model I/O accounting, page cache, external
//!   sort.
//! * [`index`] — Coconut-Tree and Coconut-Trie (the paper's contribution).
//! * [`baselines`] — iSAX 2.0, ADS+/ADSFull, STR R-tree, DSTree, Vertical
//!   and serial scan.
//!
//! ## Quick start
//!
//! ```
//! use coconut::prelude::*;
//!
//! # fn main() -> coconut::storage::Result<()> {
//! // 1. Generate a dataset of 2k random-walk series of length 64 (small so
//! //    this doctest runs under `cargo test`; scale the numbers freely).
//! let dir = TempDir::new("quickstart")?;
//! let stats = std::sync::Arc::new(IoStats::new());
//! let data_path = dir.path().join("data.bin");
//! write_dataset(&data_path, &mut RandomWalkGen::new(1), 2_000, 64, &stats)?;
//!
//! // 2. Bulk-load a Coconut-Tree (non-materialized) over it.
//! let dataset = Dataset::open(&data_path, std::sync::Arc::clone(&stats))?;
//! let config = IndexConfig::default_for_len(64);
//! let tree = CoconutTree::build(&dataset, &config, dir.path(), BuildOptions::default())?;
//!
//! // 3. Ask for the nearest neighbor of a fresh query.
//! let query = RandomWalkGen::new(42).generate(64);
//! let approx = tree.approximate_search(&query, 1)?;
//! let (exact, _stats) = tree.exact_search(&query)?;
//! assert!(exact.is_some());
//! assert!(exact.dist <= approx.dist);
//! # Ok(())
//! # }
//! ```
//!
//! ## Streaming ingest
//!
//! The same example as the README's "Streaming ingest" section: batches of
//! a growing dataset bulk-load into LSM runs, a simulated crash loses only
//! the un-acknowledged batch, and [`index::LsmCoconut::open`] recovers the
//! committed state.
//!
//! ```
//! use coconut::prelude::*;
//! use std::sync::Arc;
//!
//! # fn main() -> coconut::storage::Result<()> {
//! let dir = TempDir::new("streaming")?;
//! let stats = Arc::new(IoStats::new());
//! let data_path = dir.path().join("data.bin");
//! write_dataset(&data_path, &mut RandomWalkGen::new(1), 1_000, 64, &stats)?;
//! let dataset = Dataset::open(&data_path, Arc::clone(&stats))?;
//!
//! // Ingest the "stream" in batches; each batch becomes a bulk-loaded run.
//! let idx_dir = dir.path().join("lsm");
//! let mut lsm = LsmCoconut::new(IndexConfig::default_for_len(64),
//!                               BuildOptions::default(), &idx_dir)?;
//! lsm.ingest_upto(&dataset, 400)?;          // committed & durable on return
//! lsm.wait_for_compactions()?;
//!
//! // Simulate a crash halfway through the next commit's manifest write...
//! lsm.set_kill_point(Some(KillPoint::MidManifestWrite));
//! assert!(lsm.ingest_upto(&dataset, 1_000).is_err());
//! drop(lsm);                                // the "dead process"
//!
//! // ...and recover: the committed prefix survives, the torn write does not.
//! let mut lsm = LsmCoconut::open(&idx_dir, &dataset, BuildOptions::default())?;
//! assert_eq!(lsm.covered_end(), 400);
//! lsm.ingest(&dataset)?;                    // re-ingest the lost tail
//! let (nearest, _stats) = lsm.exact(&RandomWalkGen::new(9).generate(64))?;
//! assert!(nearest.is_some());
//! lsm.compact()?;                           // optional: merge to a single run
//! assert_eq!(lsm.run_count(), 1);
//! # Ok(())
//! # }
//! ```

pub use coconut_baselines as baselines;
pub use coconut_core as index;
pub use coconut_series as series;
pub use coconut_storage as storage;
pub use coconut_summary as summary;

/// The most commonly used types, in one import.
pub mod prelude {
    pub use crate::baselines::{
        AdsIndex, AdsVariant, DsTree, Isax2Index, RTreeIndex, SerialScan, VerticalIndex,
    };
    pub use crate::index::{
        BuildOptions, CoconutTree, CoconutTrie, CompactionPolicyKind, IndexConfig, KillPoint,
        LeveledPolicy, LsmCoconut, Snapshot, TieredPolicy,
    };
    pub use crate::series::dataset::{write_dataset, Dataset, DatasetWriter};
    pub use crate::series::gen::{AstronomyGen, Generator, RandomWalkGen, SeismicGen};
    pub use crate::series::index::{Answer, QueryStats, SeriesIndex};
    pub use crate::storage::{Deadline, IoStats, MemoryBudget, TempDir};
    pub use crate::summary::config::SaxConfig;
}
