//! Coordinator fault paths, over real sockets and in-process shard
//! servers: a shard killed mid-workload must surface a **typed**
//! `unavailable` error within the deadline (no hang), and a restarted
//! shard must rejoin through `SHARD-INFO` with its recovered slice.

use std::sync::Arc;
use std::time::{Duration, Instant};

use coconut::prelude::*;
use coconut::storage::IoStats;
use coconut_server::{ClientConfig, CoordinatorEngine, Engine, Server, ServerConfig};

const LEN: usize = 64;
const N: u64 = 600;

fn make_dataset(dir: &TempDir) -> Dataset {
    let stats = Arc::new(IoStats::new());
    let path = dir.path().join("data.bin");
    write_dataset(&path, &mut RandomWalkGen::new(11), N, LEN, &stats).unwrap();
    Dataset::open(&path, stats).unwrap()
}

fn shard_config() -> IndexConfig {
    let mut config = IndexConfig::default_for_len(LEN);
    config.leaf_capacity = 32;
    config
}

/// An in-process shard worker over `index_dir`, recovering any existing
/// slice index there (that is exactly what `serve --shard` does).
fn start_shard(ds: &Dataset, index_dir: &std::path::Path) -> Server {
    let opts = BuildOptions::default();
    let recovered = if coconut::index::manifest::Manifest::path_in(index_dir).exists() {
        Some(Arc::new(
            LsmCoconut::open(index_dir, ds, opts.clone()).unwrap(),
        ))
    } else {
        None
    };
    let engine = Arc::new(Engine::new_shard(
        ds.clone(),
        index_dir,
        shard_config(),
        opts,
        recovered,
        None,
    ));
    Server::start(
        engine,
        &ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue: 8,
            default_deadline_ms: None,
            idle_timeout_ms: None,
        },
    )
    .unwrap()
}

/// A tight retry budget so fault tests fail fast, not after minutes.
fn fast_client() -> ClientConfig {
    ClientConfig {
        connect_timeout: Duration::from_millis(250),
        request_timeout: Duration::from_secs(2),
        retries: 2,
        backoff_start: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(20),
        down_backoff_start: Duration::from_millis(50),
        down_backoff_cap: Duration::from_millis(200),
    }
}

fn coordinator_over(ds: &Dataset, addrs: &[String]) -> CoordinatorEngine {
    CoordinatorEngine::new(addrs, ds.clone(), fast_client(), None).unwrap()
}

#[test]
fn killed_shard_surfaces_typed_unavailable_within_deadline() {
    let dir = TempDir::new("dist-kill").unwrap();
    let ds = make_dataset(&dir);
    let mut s0 = start_shard(&ds, &dir.path().join("s0"));
    let mut s1 = start_shard(&ds, &dir.path().join("s1"));
    let coord = coordinator_over(&ds, &[s0.addr().to_string(), s1.addr().to_string()]);

    // Healthy path first: build and query.
    let reply = coord.execute_line(&format!("BUILD start=0 end={N}")).reply;
    assert!(reply.starts_with("OK build"), "{reply}");
    assert!(reply.contains(&format!("covered={N}")), "{reply}");
    let reply = coord.execute_line("EXACT q=seed:3").reply;
    assert!(reply.starts_with("OK exact pos="), "{reply}");

    // Kill the second shard mid-workload.
    s1.shutdown();
    let started = Instant::now();
    let reply = coord.execute_line("EXACT q=seed:4 deadline_ms=5000").reply;
    let elapsed = started.elapsed();
    assert!(
        reply.starts_with("ERR unavailable:"),
        "expected a typed unavailable error, got {reply}"
    );
    assert!(
        elapsed < Duration::from_secs(5),
        "fault path took {elapsed:?}; the deadline/retry budget was not respected"
    );

    // The coordinator itself stays alive and typed for later requests.
    let reply = coord.execute_line("HEALTH").reply;
    assert!(reply.starts_with("ERR unavailable:"), "{reply}");
    s0.shutdown();
}

#[test]
fn restarted_shard_rejoins_with_its_recovered_slice() {
    let dir = TempDir::new("dist-rejoin").unwrap();
    let ds = make_dataset(&dir);
    let s0_dir = dir.path().join("s0");
    let s1_dir = dir.path().join("s1");
    let mut s0 = start_shard(&ds, &s0_dir);
    let mut s1 = start_shard(&ds, &s1_dir);
    let s1_port = s1.addr().port();
    let coord = coordinator_over(&ds, &[s0.addr().to_string(), s1.addr().to_string()]);

    let reply = coord.execute_line(&format!("BUILD start=0 end={N}")).reply;
    assert!(reply.starts_with("OK build"), "{reply}");
    let before = coord.execute_line("EXACT q=seed:9").reply;
    assert!(before.starts_with("OK exact"), "{before}");

    // Crash and restart the shard on the same port; its slice index is
    // recovered from the manifest, so it rejoins without a new BUILD.
    s1.shutdown();
    drop(s1);
    let restarted = {
        let engine = Arc::new(Engine::new_shard(
            ds.clone(),
            &s1_dir,
            shard_config(),
            BuildOptions::default(),
            Some(Arc::new(
                LsmCoconut::open(&s1_dir, &ds, BuildOptions::default()).unwrap(),
            )),
            None,
        ));
        let config = ServerConfig {
            addr: format!("127.0.0.1:{s1_port}"),
            workers: 2,
            queue: 8,
            default_deadline_ms: None,
            idle_timeout_ms: None,
        };
        // The old listener may linger briefly; retry the bind.
        let mut server = None;
        for _ in 0..50 {
            match Server::start(Arc::clone(&engine), &config) {
                Ok(s) => {
                    server = Some(s);
                    break;
                }
                Err(_) => std::thread::sleep(Duration::from_millis(100)),
            }
        }
        server.expect("shard could not re-bind its port")
    };

    // SHARD-INFO sees the full partition again (the client reconnects).
    let reply = coord.execute_line("SHARD-INFO").reply;
    assert!(reply.starts_with("OK shard-info shards=2"), "{reply}");
    assert!(reply.contains(&format!("covered={N}")), "{reply}");

    // And queries return the same answer as before the crash.
    let after = coord.execute_line("EXACT q=seed:9").reply;
    assert_eq!(
        before.split("seq=").next(),
        after.split("seq=").next(),
        "rejoined shard changed the answer: {before} vs {after}"
    );
    drop(restarted);
    s0.shutdown();
}

#[test]
fn unassigned_shard_is_typed_until_build_assigns_its_slice() {
    let dir = TempDir::new("dist-unassigned").unwrap();
    let ds = make_dataset(&dir);
    let mut s0 = start_shard(&ds, &dir.path().join("s0"));
    let coord = coordinator_over(&ds, &[s0.addr().to_string()]);

    // Queries before any BUILD surface the shard's typed refusal.
    let reply = coord.execute_line("EXACT q=seed:1").reply;
    assert!(reply.starts_with("ERR invalid:"), "{reply}");
    assert!(reply.contains("BUILD"), "{reply}");

    // BUILD assigns the slice; the same query then succeeds.
    let reply = coord.execute_line(&format!("BUILD start=0 end={N}")).reply;
    assert!(reply.starts_with("OK build"), "{reply}");
    let reply = coord.execute_line("EXACT q=seed:1").reply;
    assert!(reply.starts_with("OK exact pos="), "{reply}");
    s0.shutdown();
}
