//! Snapshot isolation under churn, at the facade level: concurrent readers
//! pin [`Snapshot`]s and keep getting oracle-exact answers while a writer
//! ingests batches and compaction reshapes the run set underneath — and
//! run directories compacted away stay on disk exactly as long as a live
//! snapshot pins them.
//!
//! Readers here never call `wait_for_compactions` (nor any other
//! writer-side call): the snapshot API is the entire read path.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use coconut::prelude::*;
use coconut::series::distance::{euclidean, znormalize};
use coconut::storage::IoStats;

const LEN: usize = 64;
const N: u64 = 900;

fn config() -> IndexConfig {
    let mut c = IndexConfig::default_for_len(LEN);
    c.leaf_capacity = 32;
    c
}

fn setup(n: u64) -> (TempDir, Dataset) {
    let dir = TempDir::new("snapshot-churn").unwrap();
    let stats = Arc::new(IoStats::new());
    let path = dir.path().join("data.bin");
    write_dataset(&path, &mut RandomWalkGen::new(21), n, LEN, &stats).unwrap();
    (dir, Dataset::open(&path, stats).unwrap())
}

fn query(seed: u64) -> Vec<f32> {
    let mut q = RandomWalkGen::new(seed).generate(LEN);
    znormalize(&mut q);
    q
}

fn brute_force_pos(prefix: &[Vec<f32>], q: &[f32]) -> Option<u64> {
    let mut best: Option<(u64, f64)> = None;
    for (i, s) in prefix.iter().enumerate() {
        let d = euclidean(q, s);
        if best.is_none_or(|(_, bd)| d < bd) {
            best = Some((i as u64, d));
        }
    }
    best.map(|(p, _)| p)
}

/// Count the `run-*` directories currently on disk.
fn run_dirs(idx_dir: &std::path::Path) -> usize {
    std::fs::read_dir(idx_dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| {
            e.file_type().is_ok_and(|t| t.is_dir())
                && e.file_name().to_string_lossy().starts_with("run-")
        })
        .count()
}

#[test]
fn concurrent_readers_stay_oracle_exact_during_ingest_and_compaction() {
    let (dir, dataset) = setup(N);
    let idx_dir = dir.path().join("lsm");
    let lsm = Arc::new(LsmCoconut::new(config(), BuildOptions::default(), &idx_dir).unwrap());
    lsm.set_policy(Box::new(TieredPolicy {
        size_ratio: 3,
        tier_runs: 2,
        max_runs: 4,
    }));
    lsm.ingest_upto(&dataset, 100).unwrap();

    // The oracle's in-memory copy of every series.
    let all: Arc<Vec<Vec<f32>>> = Arc::new((0..N).map(|p| dataset.get(p).unwrap()).collect());
    let writer_done = Arc::new(AtomicBool::new(false));

    // Readers: pin a snapshot, answer a few queries against it, check each
    // against brute force over *exactly* the pinned prefix, repeat.
    let readers: Vec<_> = (0..3)
        .map(|r| {
            let lsm = Arc::clone(&lsm);
            let all = Arc::clone(&all);
            let done = Arc::clone(&writer_done);
            std::thread::spawn(move || {
                let mut iterations = 0u64;
                let mut seed = 1_000 * (r + 1);
                while !done.load(Ordering::Relaxed) || iterations == 0 {
                    let snap = lsm.snapshot();
                    let covered = snap.covered_end() as usize;
                    for _ in 0..3 {
                        seed += 1;
                        let q = query(seed);
                        let (ans, _) = snap.exact(&q, Deadline::NONE).unwrap();
                        let got = ans.is_some().then_some(ans.pos);
                        let want = brute_force_pos(&all[..covered], &q);
                        assert_eq!(
                            got,
                            want,
                            "reader {r} diverged at covered={covered} seq={}",
                            snap.seq()
                        );
                    }
                    iterations += 1;
                }
                iterations
            })
        })
        .collect();

    // Writer: reveal the rest in small batches (tiered compaction runs on
    // the background worker as runs pile up), then merge everything.
    let mut upto = 100;
    while upto < N {
        upto = (upto + 80).min(N);
        lsm.ingest_upto(&dataset, upto).unwrap();
        std::thread::sleep(Duration::from_millis(2));
    }
    lsm.compact().unwrap();
    writer_done.store(true, Ordering::Relaxed);

    let mut total_iterations = 0;
    for r in readers {
        total_iterations += r.join().unwrap();
    }
    // Progress guarantee: the readers were actually running during churn,
    // not serialized behind the writer.
    assert!(
        total_iterations >= 3,
        "readers made only {total_iterations} iterations"
    );
    assert_eq!(lsm.covered_end(), N);
}

#[test]
fn pinned_snapshot_keeps_run_dirs_until_dropped() {
    let (dir, dataset) = setup(300);
    let idx_dir = dir.path().join("lsm");
    let lsm = LsmCoconut::new(config(), BuildOptions::default(), &idx_dir).unwrap();
    for upto in [100u64, 200, 300] {
        lsm.ingest_upto(&dataset, upto).unwrap();
    }
    lsm.wait_for_compactions().unwrap();

    // Pin the current run set, then compact everything into one run.
    let snap = lsm.snapshot();
    let pinned_runs = snap.run_count();
    assert!(pinned_runs >= 2, "need multiple runs to make GC observable");
    let dirs_before = run_dirs(&idx_dir);
    lsm.compact().unwrap();
    assert_eq!(lsm.run_count(), 1);

    // The compacted-away directories are garbage, but the snapshot pins
    // them: they must survive an explicit GC sweep...
    assert_eq!(lsm.collect_garbage(), 0);
    assert!(lsm.pinned_garbage() > 0);
    assert_eq!(
        run_dirs(&idx_dir),
        dirs_before + 1,
        "old dirs + the merged run"
    );

    // ...and the snapshot still answers over its pinned (pre-compaction)
    // run set.
    let q = query(77);
    let (ans, _) = snap.exact(&q, Deadline::NONE).unwrap();
    assert!(ans.is_some());
    assert_eq!(snap.run_count(), pinned_runs);

    // Dropping the snapshot sweeps the pinned dirs from disk.
    drop(snap);
    assert_eq!(lsm.pinned_garbage(), 0);
    assert_eq!(run_dirs(&idx_dir), 1);
}

#[test]
fn snapshot_queries_honor_deadlines_without_blocking_on_writer() {
    let (dir, dataset) = setup(400);
    let idx_dir = dir.path().join("lsm");
    let lsm = Arc::new(LsmCoconut::new(config(), BuildOptions::default(), &idx_dir).unwrap());
    lsm.ingest_upto(&dataset, 400).unwrap();

    // A snapshot taken before writer activity serves queries concurrently
    // with an ingest that holds the writer lock the whole time.
    let snap = lsm.snapshot();
    let writer = {
        let lsm = Arc::clone(&lsm);
        let dataset = dataset.clone();
        std::thread::spawn(move || {
            // no-op ingest (already covered) plus a real compaction: both
            // take the writer path end to end
            lsm.ingest_upto(&dataset, 400).unwrap();
            lsm.compact().unwrap();
        })
    };
    for seed in 0..5 {
        let (ans, _) = snap.exact(&query(seed), Deadline::NONE).unwrap();
        assert!(ans.is_some());
    }
    // An already-expired deadline aborts with the typed error rather than
    // hanging or panicking, even mid-churn.
    let err = snap
        .exact(&query(99), Deadline::at(std::time::Instant::now()))
        .unwrap_err();
    assert!(err.is_deadline(), "got {err}");
    writer.join().unwrap();
}
