//! Property-based integration tests: for arbitrary datasets and queries,
//! the Coconut indexes must return exactly the serial-scan answer.

use std::sync::Arc;

use coconut::baselines::SerialScan;
use coconut::index::{BuildOptions, CoconutTree, CoconutTrie, IndexConfig};
use coconut::prelude::*;
use coconut::series::dataset::DatasetWriter;
use coconut::series::distance::znormalize;
use proptest::prelude::*;

const LEN: usize = 32;

fn write_series(dir: &TempDir, series: &[Vec<f32>]) -> Dataset {
    let stats = Arc::new(IoStats::new());
    let path = dir.path().join("data.bin");
    let mut w = DatasetWriter::create(&path, LEN, true, Arc::clone(&stats)).unwrap();
    for s in series {
        w.append(s).unwrap();
    }
    w.finish().unwrap();
    Dataset::open(&path, stats).unwrap()
}

fn series_strategy() -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-100.0f32..100.0f32, LEN).prop_map(|mut s| {
        znormalize(&mut s);
        s
    })
}

fn config(leaf: usize) -> IndexConfig {
    let mut c = IndexConfig::default_for_len(LEN);
    c.leaf_capacity = leaf;
    c
}

proptest! {
    // Each case builds real files; keep the count moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tree_exact_equals_scan(
        data in proptest::collection::vec(series_strategy(), 1..120),
        query in series_strategy(),
        leaf in 2usize..40,
        materialized in any::<bool>(),
    ) {
        let dir = TempDir::new("prop-tree").unwrap();
        let dataset = write_series(&dir, &data);
        let opts = BuildOptions { memory_bytes: 4096, materialized, threads: 1, shards: 1 };
        let tree = CoconutTree::build(&dataset, &config(leaf), dir.path(), opts).unwrap();
        let scan = SerialScan::new(&dataset);
        let (truth, _) = scan.exact(&query).unwrap();
        let (got, _) = tree.exact_search(&query).unwrap();
        prop_assert!((got.dist - truth.dist).abs() < 1e-4,
            "tree dist {} vs scan {}", got.dist, truth.dist);
    }

    #[test]
    fn trie_exact_equals_scan(
        data in proptest::collection::vec(series_strategy(), 1..120),
        query in series_strategy(),
        leaf in 2usize..40,
    ) {
        let dir = TempDir::new("prop-trie").unwrap();
        let dataset = write_series(&dir, &data);
        let opts = BuildOptions { memory_bytes: 4096, materialized: false, threads: 1, shards: 1 };
        let trie = CoconutTrie::build(&dataset, &config(leaf), dir.path(), opts).unwrap();
        let scan = SerialScan::new(&dataset);
        let (truth, _) = scan.exact(&query).unwrap();
        let (got, _) = trie.exact_search(&query).unwrap();
        prop_assert!((got.dist - truth.dist).abs() < 1e-4);
    }

    #[test]
    fn knn_distances_match_sorted_scan(
        data in proptest::collection::vec(series_strategy(), 5..80),
        query in series_strategy(),
        k in 1usize..8,
    ) {
        let dir = TempDir::new("prop-knn").unwrap();
        let dataset = write_series(&dir, &data);
        let opts = BuildOptions { memory_bytes: 1 << 20, materialized: false, threads: 1, shards: 1 };
        let tree = CoconutTree::build(&dataset, &config(16), dir.path(), opts).unwrap();
        let (top, _) = tree.exact_knn(&query, k).unwrap();
        // Brute-force top-k distances.
        let mut dists: Vec<f64> = data
            .iter()
            .map(|s| coconut::series::distance::euclidean(&query, s))
            .collect();
        dists.sort_by(f64::total_cmp);
        let expect = &dists[..k.min(dists.len())];
        prop_assert_eq!(top.len(), expect.len());
        for (got, want) in top.iter().zip(expect.iter()) {
            prop_assert!((got.dist - want).abs() < 1e-4);
        }
    }
}
