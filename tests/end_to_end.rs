//! Cross-crate integration tests: the whole pipeline from generator to
//! query answer, for every index family, driven through the facade crate.

use std::sync::Arc;

use coconut::baselines::{
    AdsIndex, AdsVariant, DsTree, Isax2Index, RTreeIndex, SerialScan, VerticalIndex,
};
use coconut::index::{BuildOptions, CoconutTree, CoconutTrie, IndexConfig};
use coconut::prelude::*;
use coconut::series::distance::znormalize;
use coconut::series::gen::Generator;
use coconut::summary::SaxConfig;

const LEN: usize = 64;
const N: u64 = 700;

struct Fixture {
    _dir: TempDir,
    dir_path: std::path::PathBuf,
    dataset: Dataset,
    queries: Vec<Vec<f32>>,
}

fn fixture(kind: u8) -> Fixture {
    let dir = TempDir::new("e2e").unwrap();
    let stats = Arc::new(IoStats::new());
    let path = dir.path().join("data.bin");
    let mut generator: Box<dyn Generator> = match kind {
        0 => Box::new(RandomWalkGen::new(5)),
        1 => Box::new(SeismicGen::new(5)),
        _ => Box::new(AstronomyGen::new(5)),
    };
    write_dataset(&path, generator.as_mut(), N, LEN, &stats).unwrap();
    let dataset = Dataset::open(&path, stats).unwrap();
    let queries = (0..6u64)
        .map(|i| {
            let mut q = RandomWalkGen::new(100 + i).generate(LEN);
            znormalize(&mut q);
            q
        })
        .collect();
    Fixture {
        dir_path: dir.path().to_path_buf(),
        _dir: dir,
        dataset,
        queries,
    }
}

fn config() -> IndexConfig {
    let mut c = IndexConfig::default_for_len(LEN);
    c.leaf_capacity = 40;
    c
}

/// Build every index and require exact agreement with the serial scan, on
/// all three data distributions.
#[test]
fn all_indexes_agree_with_scan_on_all_generators() {
    for kind in 0..3u8 {
        let f = fixture(kind);
        let sax = SaxConfig::default_for_len(LEN);
        let opts = BuildOptions {
            memory_bytes: 1 << 20,
            materialized: false,
            threads: 2,
            shards: 1,
        };
        let indexes: Vec<Box<dyn SeriesIndex>> = vec![
            Box::new(CoconutTree::build(&f.dataset, &config(), &f.dir_path, opts.clone()).unwrap()),
            Box::new(
                CoconutTree::build(
                    &f.dataset,
                    &config(),
                    &f.dir_path,
                    opts.clone().materialized(),
                )
                .unwrap(),
            ),
            Box::new(CoconutTrie::build(&f.dataset, &config(), &f.dir_path, opts.clone()).unwrap()),
            Box::new(
                CoconutTrie::build(
                    &f.dataset,
                    &config(),
                    &f.dir_path,
                    opts.clone().materialized(),
                )
                .unwrap(),
            ),
            Box::new(
                AdsIndex::build(
                    &f.dataset,
                    sax,
                    40,
                    1 << 20,
                    &f.dir_path,
                    AdsVariant::Plus,
                    2,
                )
                .unwrap(),
            ),
            Box::new(
                AdsIndex::build(
                    &f.dataset,
                    sax,
                    40,
                    1 << 20,
                    &f.dir_path,
                    AdsVariant::Full,
                    2,
                )
                .unwrap(),
            ),
            Box::new(RTreeIndex::build(&f.dataset, sax, 40, false, &f.dir_path).unwrap()),
            Box::new(RTreeIndex::build(&f.dataset, sax, 40, true, &f.dir_path).unwrap()),
            Box::new(Isax2Index::build(&f.dataset, sax, 40, 1 << 20, &f.dir_path).unwrap()),
            Box::new(DsTree::build(&f.dataset, 40, &f.dir_path).unwrap()),
            Box::new(VerticalIndex::build(&f.dataset, &f.dir_path).unwrap()),
        ];
        let scan = SerialScan::new(&f.dataset);
        for q in &f.queries {
            let (truth, _) = scan.exact(q).unwrap();
            for idx in &indexes {
                let (ans, _) = idx.exact(q).unwrap();
                assert_eq!(
                    ans.pos,
                    truth.pos,
                    "{} (kind {kind}) disagrees with scan",
                    idx.name()
                );
                assert!((ans.dist - truth.dist).abs() < 1e-4);
                let approx = idx.approximate(q).unwrap();
                assert!(
                    approx.dist + 1e-9 >= ans.dist,
                    "{} approximate beat exact",
                    idx.name()
                );
            }
        }
    }
}

/// Member queries (series already in the dataset) must be found at
/// distance zero by exact search.
#[test]
fn member_queries_find_themselves() {
    let f = fixture(0);
    let opts = BuildOptions {
        memory_bytes: 1 << 20,
        materialized: false,
        threads: 2,
        shards: 1,
    };
    let tree = CoconutTree::build(&f.dataset, &config(), &f.dir_path, opts.clone()).unwrap();
    let trie = CoconutTrie::build(&f.dataset, &config(), &f.dir_path, opts).unwrap();
    for pos in [0u64, N / 2, N - 1] {
        let member = f.dataset.get(pos).unwrap();
        for (name, (ans, _)) in [
            ("tree", tree.exact_search(&member).unwrap()),
            ("trie", trie.exact_search(&member).unwrap()),
        ] {
            assert!(
                ans.dist < 1e-4,
                "{name}: member at {pos} not found (dist {})",
                ans.dist
            );
        }
    }
}

/// The memory budget must not change any answer, only the cost.
#[test]
fn answers_independent_of_memory_budget() {
    let f = fixture(0);
    let budgets = [512u64, 16 << 10, 8 << 20];
    let mut answers: Vec<Vec<u64>> = Vec::new();
    for &b in &budgets {
        let opts = BuildOptions {
            memory_bytes: b,
            materialized: false,
            threads: 2,
            shards: 1,
        };
        let tree = CoconutTree::build(&f.dataset, &config(), &f.dir_path, opts).unwrap();
        answers.push(
            f.queries
                .iter()
                .map(|q| tree.exact_search(q).unwrap().0.pos)
                .collect(),
        );
    }
    assert_eq!(answers[0], answers[1]);
    assert_eq!(answers[1], answers[2]);
}

/// Query stats must be internally consistent.
#[test]
fn query_stats_are_consistent() {
    let f = fixture(0);
    let opts = BuildOptions {
        memory_bytes: 1 << 20,
        materialized: false,
        threads: 2,
        shards: 1,
    };
    let tree = CoconutTree::build(&f.dataset, &config(), &f.dir_path, opts).unwrap();
    for q in &f.queries {
        let (_, s) = tree.exact_search(q).unwrap();
        // Every record is either pruned or fetched during the SIMS phase
        // (the approximate seed adds leaf fetches on top).
        assert!(s.pruned + s.records_fetched >= N);
        assert!(s.lower_bounds >= N);
    }
}
