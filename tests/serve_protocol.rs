//! The README's "Coconut as a service" walkthrough, run over a real
//! socket: start a server, speak the line protocol exactly as the README
//! shows with `nc`, and scrape the HTTP metrics endpoint exactly as the
//! README shows with `curl`. If the README's session drifts from the
//! implementation, this suite fails.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use coconut::prelude::*;
use coconut::storage::IoStats;
use coconut_server::{Engine, Server, ServerConfig};

const LEN: usize = 64;

fn start_server(n: u64) -> (TempDir, Server) {
    let dir = TempDir::new("serve-protocol").unwrap();
    let stats = Arc::new(IoStats::new());
    let path = dir.path().join("data.bin");
    write_dataset(&path, &mut RandomWalkGen::new(5), n, LEN, &stats).unwrap();
    let dataset = Dataset::open(&path, stats).unwrap();
    let mut config = IndexConfig::default_for_len(LEN);
    config.leaf_capacity = 32;
    let lsm =
        Arc::new(LsmCoconut::new(config, BuildOptions::default(), dir.path().join("lsm")).unwrap());
    let engine = Arc::new(Engine::new(Arc::clone(&lsm), dataset, None));
    let server = Server::start(
        engine,
        &ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue: 8,
            default_deadline_ms: None,
            idle_timeout_ms: None,
        },
    )
    .unwrap();
    (dir, server)
}

/// One request line in, one reply line out — what `nc` does.
fn roundtrip(reader: &mut BufReader<TcpStream>, out: &mut TcpStream, line: &str) -> String {
    out.write_all(format!("{line}\n").as_bytes()).unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    reply.trim_end().to_string()
}

fn connect(server: &Server) -> (BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(server.addr()).unwrap();
    (BufReader::new(stream.try_clone().unwrap()), stream)
}

#[test]
fn readme_line_protocol_session() {
    let (_dir, server) = start_server(400);
    let (mut reader, mut out) = connect(&server);

    // Liveness and health.
    assert_eq!(roundtrip(&mut reader, &mut out, "PING"), "OK pong");
    let health = roundtrip(&mut reader, &mut out, "HEALTH");
    assert!(
        health.starts_with("OK healthy covered=0"),
        "fresh index: {health}"
    );

    // Ingest the dataset prefix, then all of it.
    let reply = roundtrip(&mut reader, &mut out, "INGEST upto=200");
    assert!(
        reply.starts_with("OK ingest covered=200 added=200"),
        "{reply}"
    );
    let reply = roundtrip(&mut reader, &mut out, "INGEST");
    assert!(
        reply.starts_with("OK ingest covered=400 added=200"),
        "{reply}"
    );

    // A member query: the dataset's own series 7 is its own nearest
    // neighbor, and the reply names the snapshot it was answered over.
    let reply = roundtrip(&mut reader, &mut out, "EXACT q=pos:7");
    assert!(reply.starts_with("OK exact pos=7 "), "{reply}");
    assert!(reply.contains("covered=400"), "{reply}");
    assert!(reply.contains("seq="), "{reply}");

    // Fresh-query variants: k-NN and range.
    let reply = roundtrip(&mut reader, &mut out, "KNN k=3 q=seed:42");
    assert!(reply.starts_with("OK knn k=3 "), "{reply}");
    assert_eq!(
        reply.split("hits=").nth(1).unwrap().split(',').count(),
        3,
        "{reply}"
    );
    let reply = roundtrip(&mut reader, &mut out, "RANGE eps=100 q=seed:42");
    assert!(reply.starts_with("OK range eps=100 "), "{reply}");

    // Deadlines are per request; an impossible one fails typed, not hung.
    let reply = roundtrip(&mut reader, &mut out, "EXACT q=seed:1 deadline_ms=0");
    assert!(reply.starts_with("ERR deadline:"), "{reply}");

    // Maintenance verbs.
    let reply = roundtrip(&mut reader, &mut out, "COMPACT");
    assert_eq!(reply, "OK compact runs=1");
    let reply = roundtrip(&mut reader, &mut out, "GC");
    assert!(reply.starts_with("OK gc removed="), "{reply}");

    // STATS streams Prometheus text terminated by `# EOF`.
    out.write_all(b"STATS\n").unwrap();
    let mut saw_qps = false;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        if line.trim_end() == "# EOF" {
            break;
        }
        saw_qps |= line.starts_with("coconut_qps");
    }
    assert!(saw_qps, "STATS body should carry coconut_qps");

    // Malformed input gets a typed parse error naming the offending
    // token, not a dropped connection.
    let reply = roundtrip(&mut reader, &mut out, "FROB x=1");
    assert!(reply.starts_with("ERR parse:"), "{reply}");
    assert!(reply.contains("FROB"), "{reply}");

    // QUIT closes the connection.
    assert_eq!(roundtrip(&mut reader, &mut out, "QUIT"), "OK bye");
    let mut rest = String::new();
    reader.read_to_string(&mut rest).unwrap();
    assert!(rest.is_empty(), "connection should be closed after QUIT");
}

#[test]
fn readme_curl_walkthrough_over_http() {
    let (_dir, server) = start_server(200);

    // Queries answered through the engine show up in the scrape.
    let (mut reader, mut out) = connect(&server);
    roundtrip(&mut reader, &mut out, "INGEST");
    roundtrip(&mut reader, &mut out, "EXACT q=seed:3");
    roundtrip(&mut reader, &mut out, "QUIT");

    let get = |path: &str| -> (String, String) {
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .write_all(format!("GET {path} HTTP/1.0\r\nHost: t\r\n\r\n").as_bytes())
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        (head.to_string(), body.to_string())
    };

    let (head, body) = get("/metrics");
    assert!(head.starts_with("HTTP/1.0 200 OK"), "{head}");
    assert!(head.contains("text/plain; version=0.0.4"), "{head}");
    for required in [
        "# HELP coconut_queries_total",
        "# TYPE coconut_query_latency_seconds histogram",
        "coconut_query_latency_seconds_bucket",
        "coconut_query_latency_p50_seconds",
        "coconut_query_latency_p99_seconds",
        "coconut_qps",
        "coconut_records_fetched_total",
        "coconut_compaction_debt_bytes",
        "coconut_covered_series 200",
    ] {
        assert!(body.contains(required), "missing {required} in:\n{body}");
    }

    let (head, body) = get("/health");
    assert!(head.starts_with("HTTP/1.0 200 OK"), "{head}");
    assert!(body.starts_with("OK healthy covered=200"), "{body}");

    let (head, _) = get("/nope");
    assert!(head.starts_with("HTTP/1.0 404"), "{head}");
}

#[test]
fn admission_queue_rejects_overload_with_busy() {
    let (_dir, server) = start_server(100);
    // 1 worker and a queue of 1: the third concurrent connection is
    // refused at the door with ERR busy instead of waiting unboundedly.
    let engine = Arc::clone(server.engine());
    drop(server);
    let mut server = Server::start(
        engine,
        &ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            queue: 1,
            default_deadline_ms: None,
            idle_timeout_ms: None,
        },
    )
    .unwrap();

    // Occupy the worker and fill the queue with idle-but-open connections.
    let (mut r1, mut o1) = {
        let stream = TcpStream::connect(server.addr()).unwrap();
        (BufReader::new(stream.try_clone().unwrap()), stream)
    };
    assert_eq!(roundtrip(&mut r1, &mut o1, "PING"), "OK pong");
    let _parked = TcpStream::connect(server.addr()).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(100));

    // The next connection must be turned away quickly.
    let overflow = TcpStream::connect(server.addr()).unwrap();
    let mut reply = String::new();
    let mut reader = BufReader::new(overflow);
    reader.read_line(&mut reply).unwrap();
    assert_eq!(reply.trim_end(), "ERR busy: admission queue full");
    assert!(server.engine().metrics().rejected.get() >= 1);
    server.shutdown();
}
