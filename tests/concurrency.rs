//! Concurrency integration tests: indexes answer queries from many threads
//! simultaneously (all query paths take `&self`), with and without a
//! shared buffer pool.

use std::sync::Arc;

use coconut::baselines::SerialScan;
use coconut::index::{BuildOptions, CoconutTree, CoconutTrie, IndexConfig};
use coconut::prelude::*;
use coconut::series::distance::znormalize;
use coconut::storage::PageCache;

const LEN: usize = 64;
const N: u64 = 500;

fn setup() -> (TempDir, Dataset, Vec<Vec<f32>>) {
    let dir = TempDir::new("concurrency").unwrap();
    let stats = Arc::new(IoStats::new());
    let path = dir.path().join("data.bin");
    let mut generator = RandomWalkGen::new(77);
    write_dataset(&path, &mut generator, N, LEN, &stats).unwrap();
    let dataset = Dataset::open(&path, stats).unwrap();
    let queries = (0..16u64)
        .map(|i| {
            let mut q = RandomWalkGen::new(3000 + i).generate(LEN);
            znormalize(&mut q);
            q
        })
        .collect();
    (dir, dataset, queries)
}

fn config() -> IndexConfig {
    let mut c = IndexConfig::default_for_len(LEN);
    c.leaf_capacity = 32;
    c
}

#[test]
fn parallel_exact_queries_agree_with_scan() {
    let (dir, dataset, queries) = setup();
    let opts = BuildOptions {
        memory_bytes: 1 << 20,
        materialized: false,
        threads: 1,
        shards: 1,
    };
    let tree = Arc::new(CoconutTree::build(&dataset, &config(), dir.path(), opts.clone()).unwrap());
    let trie = Arc::new(CoconutTrie::build(&dataset, &config(), dir.path(), opts).unwrap());
    let scan = SerialScan::new(&dataset);
    let truths: Vec<u64> = queries
        .iter()
        .map(|q| scan.exact(q).unwrap().0.pos)
        .collect();

    std::thread::scope(|s| {
        for worker in 0..8usize {
            let tree = Arc::clone(&tree);
            let trie = Arc::clone(&trie);
            let queries = &queries;
            let truths = &truths;
            s.spawn(move || {
                for (q, &want) in queries.iter().zip(truths.iter()) {
                    let (a, _) = tree.exact_search(q).unwrap();
                    assert_eq!(a.pos, want, "tree worker {worker}");
                    let (b, _) = trie.exact_search(q).unwrap();
                    assert_eq!(b.pos, want, "trie worker {worker}");
                }
            });
        }
    });
}

#[test]
fn shared_buffer_pool_under_contention() {
    let (dir, dataset, queries) = setup();
    let opts = BuildOptions {
        memory_bytes: 1 << 20,
        materialized: true,
        threads: 1,
        shards: 1,
    };
    let mut tree = CoconutTree::build(&dataset, &config(), dir.path(), opts).unwrap();
    // A deliberately tiny pool: constant eviction churn while 8 threads
    // read through it.
    let cache = PageCache::new(4096);
    tree.attach_cache(Arc::clone(&cache), 0);
    let tree = Arc::new(tree);
    let scan = SerialScan::new(&dataset);
    let truths: Vec<u64> = queries
        .iter()
        .map(|q| scan.exact(q).unwrap().0.pos)
        .collect();

    std::thread::scope(|s| {
        for _ in 0..8usize {
            let tree = Arc::clone(&tree);
            let queries = &queries;
            let truths = &truths;
            s.spawn(move || {
                for (q, &want) in queries.iter().zip(truths.iter()) {
                    let (a, _) = tree.exact_search(q).unwrap();
                    assert_eq!(a.pos, want);
                }
            });
        }
    });
    assert!(cache.stats().used_bytes <= 4096);
}

#[test]
fn lazy_summary_load_races_are_safe() {
    // First exact query after open() loads summaries; fire many at once.
    let (dir, dataset, queries) = setup();
    let opts = BuildOptions {
        memory_bytes: 1 << 20,
        materialized: false,
        threads: 2,
        shards: 1,
    };
    let built = CoconutTree::build(&dataset, &config(), dir.path(), opts).unwrap();
    let path = built.index_path().to_path_buf();
    drop(built);
    let tree = Arc::new(CoconutTree::open(&path, &dataset, 2).unwrap());
    let scan = SerialScan::new(&dataset);
    let truths: Vec<u64> = queries
        .iter()
        .map(|q| scan.exact(q).unwrap().0.pos)
        .collect();
    std::thread::scope(|s| {
        for _ in 0..8usize {
            let tree = Arc::clone(&tree);
            let queries = &queries;
            let truths = &truths;
            s.spawn(move || {
                for (q, &want) in queries.iter().zip(truths.iter()) {
                    let (a, _) = tree.exact_search(q).unwrap();
                    assert_eq!(a.pos, want);
                }
            });
        }
    });
}

#[test]
fn concurrent_sharded_builds_are_deterministic_under_query_load() {
    // Stress the sharded construction path: four builder threads each run a
    // multi-shard build over the same dataset (nested parallelism — every
    // build spawns its own shard workers) while four query threads hammer a
    // finished index, racing its lazy-summary RwLock. All concurrently built
    // indexes must be bit-identical to the single-shard baseline.
    let (dir, dataset, queries) = setup();
    let opts = BuildOptions {
        memory_bytes: 1 << 18, // small: every shard spills and merges
        materialized: false,
        threads: 2,
        shards: 1,
    };
    let baseline = CoconutTree::build(&dataset, &config(), dir.path(), opts.clone()).unwrap();
    let baseline_bytes = std::fs::read(baseline.index_path()).unwrap();
    let reference = Arc::new(baseline);
    let scan = SerialScan::new(&dataset);
    let truths: Vec<u64> = queries
        .iter()
        .map(|q| scan.exact(q).unwrap().0.pos)
        .collect();

    std::thread::scope(|s| {
        for worker in 0..4usize {
            let dataset = &dataset;
            let dir = &dir;
            let opts = opts.clone();
            let baseline_bytes = &baseline_bytes;
            s.spawn(move || {
                let sub = dir.path().join(format!("builder-{worker}"));
                std::fs::create_dir_all(&sub).unwrap();
                let shards = 2 + worker; // 2..=5 shards across workers
                let tree =
                    CoconutTree::build(dataset, &config(), &sub, opts.with_shards(shards)).unwrap();
                let bytes = std::fs::read(tree.index_path()).unwrap();
                assert_eq!(
                    &bytes, baseline_bytes,
                    "worker {worker} ({shards} shards) diverged"
                );
            });
        }
        for _ in 0..4usize {
            let reference = Arc::clone(&reference);
            let queries = &queries;
            let truths = &truths;
            s.spawn(move || {
                for (q, &want) in queries.iter().zip(truths.iter()) {
                    let (a, _) = reference.exact_search(q).unwrap();
                    assert_eq!(a.pos, want);
                }
            });
        }
    });
}
