//! Concurrency integration tests: indexes answer queries from many threads
//! simultaneously (all query paths take `&self`), with and without a
//! shared buffer pool, and the LSM layer sustains multi-writer ingest
//! under live-snapshot query load and forced compaction churn.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use coconut::baselines::SerialScan;
use coconut::index::{
    BuildOptions, CoconutTree, CoconutTrie, CompactionPolicyKind, IndexConfig, LsmCoconut,
};
use coconut::prelude::*;
use coconut::series::distance::znormalize;
use coconut::storage::{Deadline, PageCache};

const LEN: usize = 64;
const N: u64 = 500;

fn setup() -> (TempDir, Dataset, Vec<Vec<f32>>) {
    let dir = TempDir::new("concurrency").unwrap();
    let stats = Arc::new(IoStats::new());
    let path = dir.path().join("data.bin");
    let mut generator = RandomWalkGen::new(77);
    write_dataset(&path, &mut generator, N, LEN, &stats).unwrap();
    let dataset = Dataset::open(&path, stats).unwrap();
    let queries = (0..16u64)
        .map(|i| {
            let mut q = RandomWalkGen::new(3000 + i).generate(LEN);
            znormalize(&mut q);
            q
        })
        .collect();
    (dir, dataset, queries)
}

fn config() -> IndexConfig {
    let mut c = IndexConfig::default_for_len(LEN);
    c.leaf_capacity = 32;
    c
}

#[test]
fn parallel_exact_queries_agree_with_scan() {
    let (dir, dataset, queries) = setup();
    let opts = BuildOptions {
        memory_bytes: 1 << 20,
        materialized: false,
        threads: 1,
        shards: 1,
    };
    let tree = Arc::new(CoconutTree::build(&dataset, &config(), dir.path(), opts.clone()).unwrap());
    let trie = Arc::new(CoconutTrie::build(&dataset, &config(), dir.path(), opts).unwrap());
    let scan = SerialScan::new(&dataset);
    let truths: Vec<u64> = queries
        .iter()
        .map(|q| scan.exact(q).unwrap().0.pos)
        .collect();

    std::thread::scope(|s| {
        for worker in 0..8usize {
            let tree = Arc::clone(&tree);
            let trie = Arc::clone(&trie);
            let queries = &queries;
            let truths = &truths;
            s.spawn(move || {
                for (q, &want) in queries.iter().zip(truths.iter()) {
                    let (a, _) = tree.exact_search(q).unwrap();
                    assert_eq!(a.pos, want, "tree worker {worker}");
                    let (b, _) = trie.exact_search(q).unwrap();
                    assert_eq!(b.pos, want, "trie worker {worker}");
                }
            });
        }
    });
}

#[test]
fn shared_buffer_pool_under_contention() {
    let (dir, dataset, queries) = setup();
    let opts = BuildOptions {
        memory_bytes: 1 << 20,
        materialized: true,
        threads: 1,
        shards: 1,
    };
    let mut tree = CoconutTree::build(&dataset, &config(), dir.path(), opts).unwrap();
    // A deliberately tiny pool: constant eviction churn while 8 threads
    // read through it.
    let cache = PageCache::new(4096);
    tree.attach_cache(Arc::clone(&cache), 0);
    let tree = Arc::new(tree);
    let scan = SerialScan::new(&dataset);
    let truths: Vec<u64> = queries
        .iter()
        .map(|q| scan.exact(q).unwrap().0.pos)
        .collect();

    std::thread::scope(|s| {
        for _ in 0..8usize {
            let tree = Arc::clone(&tree);
            let queries = &queries;
            let truths = &truths;
            s.spawn(move || {
                for (q, &want) in queries.iter().zip(truths.iter()) {
                    let (a, _) = tree.exact_search(q).unwrap();
                    assert_eq!(a.pos, want);
                }
            });
        }
    });
    assert!(cache.stats().used_bytes <= 4096);
}

#[test]
fn lazy_summary_load_races_are_safe() {
    // First exact query after open() loads summaries; fire many at once.
    let (dir, dataset, queries) = setup();
    let opts = BuildOptions {
        memory_bytes: 1 << 20,
        materialized: false,
        threads: 2,
        shards: 1,
    };
    let built = CoconutTree::build(&dataset, &config(), dir.path(), opts).unwrap();
    let path = built.index_path().to_path_buf();
    drop(built);
    let tree = Arc::new(CoconutTree::open(&path, &dataset, 2).unwrap());
    let scan = SerialScan::new(&dataset);
    let truths: Vec<u64> = queries
        .iter()
        .map(|q| scan.exact(q).unwrap().0.pos)
        .collect();
    std::thread::scope(|s| {
        for _ in 0..8usize {
            let tree = Arc::clone(&tree);
            let queries = &queries;
            let truths = &truths;
            s.spawn(move || {
                for (q, &want) in queries.iter().zip(truths.iter()) {
                    let (a, _) = tree.exact_search(q).unwrap();
                    assert_eq!(a.pos, want);
                }
            });
        }
    });
}

#[test]
fn concurrent_sharded_builds_are_deterministic_under_query_load() {
    // Stress the sharded construction path: four builder threads each run a
    // multi-shard build over the same dataset (nested parallelism — every
    // build spawns its own shard workers) while four query threads hammer a
    // finished index, racing its lazy-summary RwLock. All concurrently built
    // indexes must be bit-identical to the single-shard baseline.
    let (dir, dataset, queries) = setup();
    let opts = BuildOptions {
        memory_bytes: 1 << 18, // small: every shard spills and merges
        materialized: false,
        threads: 2,
        shards: 1,
    };
    let baseline = CoconutTree::build(&dataset, &config(), dir.path(), opts.clone()).unwrap();
    let baseline_bytes = std::fs::read(baseline.index_path()).unwrap();
    let reference = Arc::new(baseline);
    let scan = SerialScan::new(&dataset);
    let truths: Vec<u64> = queries
        .iter()
        .map(|q| scan.exact(q).unwrap().0.pos)
        .collect();

    std::thread::scope(|s| {
        for worker in 0..4usize {
            let dataset = &dataset;
            let dir = &dir;
            let opts = opts.clone();
            let baseline_bytes = &baseline_bytes;
            s.spawn(move || {
                let sub = dir.path().join(format!("builder-{worker}"));
                std::fs::create_dir_all(&sub).unwrap();
                let shards = 2 + worker; // 2..=5 shards across workers
                let tree =
                    CoconutTree::build(dataset, &config(), &sub, opts.with_shards(shards)).unwrap();
                let bytes = std::fs::read(tree.index_path()).unwrap();
                assert_eq!(
                    &bytes, baseline_bytes,
                    "worker {worker} ({shards} shards) diverged"
                );
            });
        }
        for _ in 0..4usize {
            let reference = Arc::clone(&reference);
            let queries = &queries;
            let truths = &truths;
            s.spawn(move || {
                for (q, &want) in queries.iter().zip(truths.iter()) {
                    let (a, _) = reference.exact_search(q).unwrap();
                    assert_eq!(a.pos, want);
                }
            });
        }
    });
}

/// A tiny seeded xorshift used to shuffle thread interleavings: each
/// participant yields a pseudo-random number of times between operations,
/// so repeated runs explore different schedules while a fixed seed keeps
/// any failure reproducible.
struct YieldShuffle(u64);

impl YieldShuffle {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn shuffle(&mut self) {
        for _ in 0..(self.next() % 4) {
            std::thread::yield_now();
        }
    }
}

#[test]
fn multi_writer_ingest_under_query_load_and_compaction_churn() {
    // The full streaming write path under contention: three writer threads
    // group-commit runs, two query threads verify live snapshots against a
    // brute-force oracle and watch the manifest sequence, while a churn
    // thread forces full compactions the whole time. The test completing
    // at all is the no-deadlock assertion; the oracle and sequence checks
    // are the no-corruption and commit-ordering assertions.
    const STREAM_N: u64 = 900;
    let dir = TempDir::new("concurrency-lsm").unwrap();
    let stats = Arc::new(IoStats::new());
    let path = dir.path().join("data.bin");
    let mut generator = RandomWalkGen::new(4242);
    write_dataset(&path, &mut generator, STREAM_N, LEN, &stats).unwrap();
    let dataset = Dataset::open(&path, stats).unwrap();
    let all: Vec<Vec<f32>> = (0..STREAM_N).map(|p| dataset.get(p).unwrap()).collect();

    let mut config = IndexConfig::default_for_len(LEN);
    config.leaf_capacity = 32;
    let lsm = LsmCoconut::create(
        config,
        BuildOptions {
            memory_bytes: 1 << 20,
            materialized: false,
            threads: 2,
            shards: 1,
        },
        dir.path().join("idx"),
        0,
        CompactionPolicyKind::Leveled,
    )
    .unwrap();

    let done = AtomicBool::new(false);
    let max_seq = AtomicU64::new(0);
    std::thread::scope(|s| {
        for w in 0..3u64 {
            let lsm = &lsm;
            let dataset = &dataset;
            s.spawn(move || {
                let mut shuffle = YieldShuffle(0x51ED | (w << 32));
                let writer = lsm.writer();
                while writer.ingest_next(dataset, 30).unwrap().is_some() {
                    shuffle.shuffle();
                }
            });
        }
        for q in 0..2u64 {
            let lsm = &lsm;
            let all = &all;
            let done = &done;
            let max_seq = &max_seq;
            s.spawn(move || {
                let mut shuffle = YieldShuffle(0xBADC0DE | (q << 32));
                let mut query = RandomWalkGen::new(7000 + q).generate(LEN);
                znormalize(&mut query);
                let mut last_seq = 0;
                while !done.load(Ordering::Acquire) {
                    let snap = lsm.snapshot();
                    // Manifest sequence numbers never go backwards, from
                    // this thread's view or globally.
                    let seq = snap.seq();
                    assert!(seq >= last_seq, "seq regressed: {seq} < {last_seq}");
                    last_seq = seq;
                    max_seq.fetch_max(seq, Ordering::AcqRel);
                    // The snapshot answers exactly over its frozen prefix,
                    // no matter what commits and compactions land mid-query.
                    let covered = snap.covered_end() as usize;
                    if covered > 0 {
                        let (ans, _) = snap.exact(&query, Deadline::NONE).unwrap();
                        let mut best = f64::INFINITY;
                        let mut pos = 0u64;
                        for (i, series) in all[..covered].iter().enumerate() {
                            let d = coconut::series::distance::euclidean(&query, series);
                            if d < best {
                                best = d;
                                pos = i as u64;
                            }
                        }
                        assert_eq!(ans.pos, pos, "snapshot diverged at covered={covered}");
                    }
                    shuffle.shuffle();
                }
            });
        }
        {
            let lsm = &lsm;
            let done = &done;
            s.spawn(move || {
                let mut shuffle = YieldShuffle(0xC0FFEE);
                while !done.load(Ordering::Acquire) {
                    lsm.compact().unwrap();
                    shuffle.shuffle();
                }
            });
        }
        // Writers finish on their own; queries and churn run until the
        // whole dataset is covered, then stand down.
        let lsm = &lsm;
        let done = &done;
        s.spawn(move || {
            while lsm.covered_end() < STREAM_N {
                std::thread::yield_now();
            }
            done.store(true, Ordering::Release);
        });
    });

    // Everything landed: contiguous full coverage, a settled run set, and
    // oracle-exact answers through a final full compaction.
    assert_eq!(lsm.covered_end(), STREAM_N);
    assert_eq!(lsm.len(), STREAM_N);
    let stats = lsm.write_stats();
    assert!(stats.runs_committed >= stats.ingest_commits);
    lsm.wait_for_compactions().unwrap();
    lsm.compact().unwrap();
    assert_eq!(lsm.run_count(), 1);
    // The final snapshot is at least as new as anything any query thread
    // ever observed (global commit ordering never went backwards).
    assert!(lsm.snapshot().seq() >= max_seq.load(Ordering::Acquire));
    let mut query = RandomWalkGen::new(9999).generate(LEN);
    znormalize(&mut query);
    let (ans, _) = lsm.exact(&query).unwrap();
    let scan = SerialScan::new(&dataset);
    assert_eq!(ans.pos, scan.exact(&query).unwrap().0.pos);
}
