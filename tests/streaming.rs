//! Streaming-ingest integration tests at the facade level: the README's
//! "Streaming ingest" walkthrough (batch ingest → crash → `open()` recovery
//! → query), run against the public API end to end.

use std::sync::Arc;

use coconut::baselines::SerialScan;
use coconut::prelude::*;
use coconut::series::distance::znormalize;

const LEN: usize = 64;

fn config() -> IndexConfig {
    let mut c = IndexConfig::default_for_len(LEN);
    c.leaf_capacity = 32;
    c
}

fn setup(n: u64) -> (TempDir, Dataset) {
    let dir = TempDir::new("streaming-it").unwrap();
    let stats = Arc::new(IoStats::new());
    let path = dir.path().join("data.bin");
    write_dataset(&path, &mut RandomWalkGen::new(7), n, LEN, &stats).unwrap();
    (dir, Dataset::open(&path, stats).unwrap())
}

fn query(seed: u64) -> Vec<f32> {
    let mut q = RandomWalkGen::new(seed).generate(LEN);
    znormalize(&mut q);
    q
}

#[test]
fn batch_ingest_survives_clean_restart() {
    let (dir, dataset) = setup(500);
    let idx_dir = dir.path().join("lsm");
    {
        let lsm = LsmCoconut::new(config(), BuildOptions::default(), &idx_dir).unwrap();
        for upto in [100u64, 250, 400, 500] {
            lsm.ingest_upto(&dataset, upto).unwrap();
        }
        lsm.wait_for_compactions().unwrap();
    } // dropped: a clean shutdown
    let lsm = LsmCoconut::open(&idx_dir, &dataset, BuildOptions::default()).unwrap();
    assert_eq!(lsm.len(), 500);
    let scan = SerialScan::new(&dataset);
    for seed in 40..45 {
        let q = query(seed);
        let (truth, _) = scan.exact(&q).unwrap();
        let (got, _) = lsm.exact(&q).unwrap();
        assert_eq!(got.pos, truth.pos, "seed {seed}");
    }
}

#[test]
fn simulated_crash_recovers_committed_prefix() {
    let (dir, dataset) = setup(600);
    let idx_dir = dir.path().join("lsm");
    {
        let lsm = LsmCoconut::new(config(), BuildOptions::default(), &idx_dir).unwrap();
        lsm.ingest_upto(&dataset, 300).unwrap();
        lsm.wait_for_compactions().unwrap();
        // Die halfway through the next commit's manifest write.
        lsm.set_kill_point(Some(KillPoint::MidManifestWrite));
        assert!(lsm.ingest_upto(&dataset, 600).is_err());
    } // the "crashed process"
    let lsm = LsmCoconut::open(&idx_dir, &dataset, BuildOptions::default()).unwrap();
    // The un-committed batch is lost — exactly crash semantics — and the
    // committed prefix answers exactly.
    assert_eq!(lsm.covered_end(), 300);
    let scan = SerialScan::new(&dataset);
    // Re-ingest the lost tail and verify against the full oracle.
    lsm.ingest(&dataset).unwrap();
    assert_eq!(lsm.covered_end(), 600);
    for seed in 50..55 {
        let q = query(seed);
        let (truth, _) = scan.exact(&q).unwrap();
        let (got, _) = lsm.exact(&q).unwrap();
        assert_eq!(got.pos, truth.pos, "seed {seed}");
    }
}

#[test]
fn tiered_policy_bounds_read_amplification() {
    let (dir, dataset) = setup(800);
    let idx_dir = dir.path().join("lsm");
    let lsm = LsmCoconut::new(config(), BuildOptions::default(), &idx_dir).unwrap();
    lsm.set_policy(Box::new(TieredPolicy {
        size_ratio: 4,
        tier_runs: 2,
        max_runs: 3,
    }));
    for i in 1..=16u64 {
        lsm.ingest_upto(&dataset, i * 50).unwrap();
    }
    lsm.wait_for_compactions().unwrap();
    assert!(lsm.run_count() <= 3, "{} runs", lsm.run_count());
    assert_eq!(lsm.len(), 800);
    let scan = SerialScan::new(&dataset);
    let q = query(77);
    let (truth, _) = scan.exact(&q).unwrap();
    assert_eq!(lsm.exact(&q).unwrap().0.pos, truth.pos);
}
