//! Persistence integration tests: indexes built, closed, reopened from
//! their on-disk files, and queried identically.

use std::sync::Arc;

use coconut::index::{BuildOptions, CoconutTree, CoconutTrie, IndexConfig};
use coconut::prelude::*;
use coconut::series::distance::znormalize;

const LEN: usize = 64;

fn setup(n: u64) -> (TempDir, Dataset, Vec<Vec<f32>>) {
    let dir = TempDir::new("persist").unwrap();
    let stats = Arc::new(IoStats::new());
    let path = dir.path().join("data.bin");
    let mut generator = RandomWalkGen::new(9);
    write_dataset(&path, &mut generator, n, LEN, &stats).unwrap();
    let dataset = Dataset::open(&path, stats).unwrap();
    let queries = (0..5u64)
        .map(|i| {
            let mut q = RandomWalkGen::new(500 + i).generate(LEN);
            znormalize(&mut q);
            q
        })
        .collect();
    (dir, dataset, queries)
}

fn config() -> IndexConfig {
    let mut c = IndexConfig::default_for_len(LEN);
    c.leaf_capacity = 32;
    c
}

#[test]
fn tree_roundtrips_through_disk() {
    let (dir, dataset, queries) = setup(400);
    for materialized in [false, true] {
        let opts = BuildOptions {
            memory_bytes: 1 << 20,
            materialized,
            threads: 2,
            shards: 1,
        };
        let built = CoconutTree::build(&dataset, &config(), dir.path(), opts).unwrap();
        let path = built.index_path().to_path_buf();
        let expected: Vec<_> = queries
            .iter()
            .map(|q| built.exact_search(q).unwrap().0)
            .collect();
        drop(built);

        let reopened = CoconutTree::open(&path, &dataset, 2).unwrap();
        assert_eq!(reopened.is_materialized(), materialized);
        for (q, want) in queries.iter().zip(expected.iter()) {
            let (got, _) = reopened.exact_search(q).unwrap();
            assert_eq!(got.pos, want.pos, "materialized={materialized}");
        }
    }
}

#[test]
fn trie_roundtrips_through_disk() {
    let (dir, dataset, queries) = setup(400);
    for materialized in [false, true] {
        let opts = BuildOptions {
            memory_bytes: 1 << 20,
            materialized,
            threads: 2,
            shards: 1,
        };
        let built = CoconutTrie::build(&dataset, &config(), dir.path(), opts).unwrap();
        let path = built.index_path().to_path_buf();
        let expected: Vec<_> = queries
            .iter()
            .map(|q| built.exact_search(q).unwrap().0)
            .collect();
        drop(built);

        let reopened = CoconutTrie::open(&path, &dataset, 2).unwrap();
        for (q, want) in queries.iter().zip(expected.iter()) {
            let (got, _) = reopened.exact_search(q).unwrap();
            assert_eq!(got.pos, want.pos, "materialized={materialized}");
        }
    }
}

#[test]
fn opening_wrong_kind_fails_cleanly() {
    let (dir, dataset, _) = setup(100);
    let opts = BuildOptions {
        memory_bytes: 1 << 20,
        materialized: false,
        threads: 1,
        shards: 1,
    };
    let tree = CoconutTree::build(&dataset, &config(), dir.path(), opts.clone()).unwrap();
    let trie = CoconutTrie::build(&dataset, &config(), dir.path(), opts).unwrap();
    assert!(CoconutTrie::open(tree.index_path(), &dataset, 1).is_err());
    assert!(CoconutTree::open(trie.index_path(), &dataset, 1).is_err());
}

#[test]
fn corrupted_index_is_rejected() {
    let (dir, dataset, _) = setup(100);
    let opts = BuildOptions {
        memory_bytes: 1 << 20,
        materialized: false,
        threads: 1,
        shards: 1,
    };
    let tree = CoconutTree::build(&dataset, &config(), dir.path(), opts).unwrap();
    let path = tree.index_path().to_path_buf();
    drop(tree);
    // Truncate the file mid-directory.
    let len = std::fs::metadata(&path).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
    f.set_len(len - 10).unwrap();
    drop(f);
    assert!(CoconutTree::open(&path, &dataset, 1).is_err());
}

#[test]
fn dataset_mismatch_is_rejected() {
    let (dir, dataset, _) = setup(100);
    let opts = BuildOptions {
        memory_bytes: 1 << 20,
        materialized: false,
        threads: 1,
        shards: 1,
    };
    let tree = CoconutTree::build(&dataset, &config(), dir.path(), opts).unwrap();
    let path = tree.index_path().to_path_buf();
    drop(tree);

    // A dataset with a different series length must be refused.
    let stats = Arc::new(IoStats::new());
    let other_path = dir.path().join("other.bin");
    let mut generator = RandomWalkGen::new(1);
    write_dataset(&other_path, &mut generator, 10, 32, &stats).unwrap();
    let other = Dataset::open(&other_path, stats).unwrap();
    assert!(CoconutTree::open(&path, &other, 1).is_err());
}
