//! End-to-end SIMD/scalar parity: a full SIMS exact search must return
//! **identical answers** whether the process runs the dispatched vector
//! kernels or is pinned to the scalar mirror with `COCONUT_FORCE_SCALAR=1`.
//!
//! Dispatch is chosen once per process, so the comparison needs two
//! processes: the test re-runs itself (this same test binary, filtered to
//! one helper test) with the environment variable set, and compares a
//! digest of every answer — positions *and* the exact f64 bit patterns of
//! the distances — across the boundary. CI additionally runs the whole
//! suite a second time under `COCONUT_FORCE_SCALAR=1`, which makes this
//! test compare scalar against scalar (trivially green) while every other
//! suite exercises the scalar path end to end.

use coconut::index::sims::{sims_exact, sims_exact_knn, sims_range, SeriesFetcher};
use coconut::prelude::*;
use coconut::series::distance::znormalize;
use coconut::series::Value;
use coconut::summary::paa::paa;
use coconut::summary::sax::Summarizer;
use coconut::summary::ZKey;
use std::fmt::Write as _;

struct VecFetcher<'a> {
    data: &'a [Vec<Value>],
}

impl SeriesFetcher for VecFetcher<'_> {
    fn fetch(&mut self, i: usize, out: &mut [Value]) -> coconut::storage::Result<u64> {
        out.copy_from_slice(&self.data[i]);
        Ok(i as u64)
    }
}

/// Deterministic workload: 600 random-walk series, 12 queries, exact 1-NN +
/// 3-NN + range search. Every answer is folded into the digest with the
/// full bit pattern of its distance.
fn answers_digest() -> String {
    let len = 64usize;
    let config = SaxConfig::default_for_len(len);
    let mut gen = RandomWalkGen::new(2024);
    let mut summ = Summarizer::new(config);
    let mut data: Vec<Vec<Value>> = Vec::new();
    let mut keys: Vec<ZKey> = Vec::new();
    for _ in 0..600 {
        let mut s = gen.generate(len);
        znormalize(&mut s);
        keys.push(summ.zkey(&s));
        data.push(s);
    }
    let mut digest = String::new();
    let mut qgen = RandomWalkGen::new(77);
    for qi in 0..12 {
        let mut q = qgen.generate(len);
        znormalize(&mut q);
        let qp = paa(&q, config.segments);

        let mut fetcher = VecFetcher { data: &data };
        let (ans, _) = sims_exact(
            &q,
            &qp,
            &keys,
            &config,
            2,
            Answer::none(),
            &mut fetcher,
            Deadline::NONE,
        )
        .unwrap();
        let _ = writeln!(
            digest,
            "q{qi} exact pos={} dist={:016x}",
            ans.pos,
            ans.dist.to_bits()
        );

        let mut fetcher = VecFetcher { data: &data };
        let (knn, _) = sims_exact_knn(
            &q,
            &qp,
            &keys,
            &config,
            2,
            3,
            &[],
            &mut fetcher,
            Deadline::NONE,
        )
        .unwrap();
        for (r, a) in knn.iter().enumerate() {
            let _ = writeln!(
                digest,
                "q{qi} knn{r} pos={} dist={:016x}",
                a.pos,
                a.dist.to_bits()
            );
        }

        let mut fetcher = VecFetcher { data: &data };
        let eps = ans.dist * 1.5 + 0.1;
        let (range, _) = sims_range(
            &q,
            &qp,
            &keys,
            &config,
            2,
            eps,
            &mut fetcher,
            Deadline::NONE,
        )
        .unwrap();
        let _ = writeln!(digest, "q{qi} range n={}", range.len());
        for a in range.iter().take(5) {
            let _ = writeln!(
                digest,
                "q{qi} range pos={} dist={:016x}",
                a.pos,
                a.dist.to_bits()
            );
        }
    }
    digest
}

/// Helper entry point the parent test invokes in a child process with
/// `COCONUT_FORCE_SCALAR=1`: prints the digest between markers. Runs (and
/// trivially passes) as a normal test too.
#[test]
fn scalar_digest_child() {
    println!("DIGEST-BEGIN");
    print!("{}", answers_digest());
    println!("DIGEST-END");
}

#[test]
fn sims_answers_identical_under_forced_scalar() {
    let here = answers_digest();

    // Re-run this test binary, filtered to the helper above, pinned to the
    // scalar kernels.
    let exe = std::env::current_exe().expect("test binary path");
    let output = std::process::Command::new(exe)
        .args([
            "scalar_digest_child",
            "--exact",
            "--nocapture",
            "--test-threads=1",
        ])
        .env("COCONUT_FORCE_SCALAR", "1")
        .output()
        .expect("spawn scalar child");
    assert!(
        output.status.success(),
        "scalar child failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    let begin = stdout.find("DIGEST-BEGIN").expect("digest start marker") + "DIGEST-BEGIN\n".len();
    let end = stdout.find("DIGEST-END").expect("digest end marker");
    let there = &stdout[begin..end];

    assert_eq!(
        here, there,
        "SIMS answers diverge between dispatched and scalar-forced kernels"
    );
}
