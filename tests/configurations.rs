//! Configuration-space integration tests: the indexes must stay exact for
//! every supported summarization shape, not just the paper's default
//! 16-segment / 256-cardinality setup.

use std::sync::Arc;

use coconut::baselines::SerialScan;
use coconut::index::{BuildOptions, CoconutTree, CoconutTrie, IndexConfig};
use coconut::prelude::*;
use coconut::series::distance::znormalize;
use coconut::summary::SaxConfig;

fn dataset(dir: &TempDir, n: u64, len: usize) -> Dataset {
    let stats = Arc::new(IoStats::new());
    let path = dir.path().join(format!("d{len}.bin"));
    let mut generator = RandomWalkGen::new(31);
    write_dataset(&path, &mut generator, n, len, &stats).unwrap();
    Dataset::open(&path, stats).unwrap()
}

fn queries(len: usize) -> Vec<Vec<f32>> {
    (0..4u64)
        .map(|i| {
            let mut q = RandomWalkGen::new(700 + i).generate(len);
            znormalize(&mut q);
            q
        })
        .collect()
}

/// Sweep (series_len, segments, card_bits) including awkward shapes:
/// lengths not divisible by segment counts, tiny cardinalities, odd
/// segment counts, and the full 128-bit key budget.
#[test]
fn exactness_across_sax_configurations() {
    let cases: &[(usize, usize, u8)] = &[
        (100, 7, 3),  // non-divisible length, odd segments, small alphabet
        (64, 16, 8),  // full default shape at short length
        (96, 12, 5),  // non-power-of-two everything
        (33, 3, 1),   // 1-bit symbols
        (256, 32, 4), // exactly 128 key bits with many segments
        (16, 16, 8),  // one point per segment, full key budget
    ];
    for &(len, segments, card_bits) in cases {
        let dir = TempDir::new("cfg").unwrap();
        let ds = dataset(&dir, 300, len);
        let sax = SaxConfig {
            series_len: len,
            segments,
            card_bits,
        };
        sax.validate().unwrap();
        let config = IndexConfig {
            sax,
            leaf_capacity: 25,
            fill_factor: 1.0,
            internal_fanout: 8,
            split_policy: Default::default(),
        };
        let opts = BuildOptions {
            memory_bytes: 8192,
            materialized: false,
            threads: 2,
            shards: 1,
        };
        let tree = CoconutTree::build(&ds, &config, dir.path(), opts.clone()).unwrap();
        let trie = CoconutTrie::build(&ds, &config, dir.path(), opts).unwrap();
        let scan = SerialScan::new(&ds);
        for q in queries(len) {
            let (truth, _) = scan.exact(&q).unwrap();
            let (a, _) = tree.exact_search(&q).unwrap();
            let (b, _) = trie.exact_search(&q).unwrap();
            assert_eq!(
                a.pos, truth.pos,
                "tree len={len} w={segments} bits={card_bits}"
            );
            assert_eq!(
                b.pos, truth.pos,
                "trie len={len} w={segments} bits={card_bits}"
            );
        }
    }
}

/// Fill factors below 1.0 leave reserved slots but answers are unchanged.
#[test]
fn fill_factor_sweep_preserves_answers() {
    let dir = TempDir::new("cfg-fill").unwrap();
    let ds = dataset(&dir, 400, 64);
    let scan = SerialScan::new(&ds);
    let qs = queries(64);
    for fill in [0.3f64, 0.5, 0.75, 1.0] {
        let config = IndexConfig {
            sax: SaxConfig::default_for_len(64),
            leaf_capacity: 32,
            fill_factor: fill,
            internal_fanout: 16,
            split_policy: Default::default(),
        };
        let tree = CoconutTree::build(
            &ds,
            &config,
            dir.path(),
            BuildOptions {
                memory_bytes: 1 << 20,
                materialized: false,
                threads: 1,
                shards: 1,
            },
        )
        .unwrap();
        assert!(
            (tree.avg_fill() - fill).abs() < 0.1,
            "fill {fill}: measured {}",
            tree.avg_fill()
        );
        for q in &qs {
            let (truth, _) = scan.exact(q).unwrap();
            let (got, _) = tree.exact_search(q).unwrap();
            assert_eq!(got.pos, truth.pos, "fill {fill}");
        }
    }
}

/// Extreme leaf capacities: 1-entry leaves and a single giant leaf.
#[test]
fn leaf_capacity_extremes() {
    let dir = TempDir::new("cfg-leaf").unwrap();
    let ds = dataset(&dir, 120, 64);
    let scan = SerialScan::new(&ds);
    let qs = queries(64);
    for leaf in [1usize, 2, 120, 100_000] {
        let config = IndexConfig {
            sax: SaxConfig::default_for_len(64),
            leaf_capacity: leaf,
            fill_factor: 1.0,
            internal_fanout: 4,
            split_policy: Default::default(),
        };
        let tree = CoconutTree::build(
            &ds,
            &config,
            dir.path(),
            BuildOptions {
                memory_bytes: 1 << 20,
                materialized: false,
                threads: 1,
                shards: 1,
            },
        )
        .unwrap();
        if leaf == 1 {
            assert_eq!(tree.leaf_count(), 120);
            assert!(tree.height() >= 3, "height {}", tree.height());
        }
        if leaf >= 120 {
            assert_eq!(tree.leaf_count(), 1);
        }
        for q in &qs {
            let (truth, _) = scan.exact(q).unwrap();
            let (got, _) = tree.exact_search(q).unwrap();
            assert_eq!(got.pos, truth.pos, "leaf {leaf}");
        }
    }
}

/// DTW search stays exact across configurations too.
#[test]
fn dtw_search_exact_on_odd_config() {
    use coconut::series::dtw::dtw;
    let dir = TempDir::new("cfg-dtw").unwrap();
    let len = 100usize;
    let ds = dataset(&dir, 150, len);
    let sax = SaxConfig {
        series_len: len,
        segments: 10,
        card_bits: 6,
    };
    let config = IndexConfig {
        sax,
        leaf_capacity: 20,
        fill_factor: 1.0,
        internal_fanout: 8,
        split_policy: Default::default(),
    };
    let tree = CoconutTree::build(
        &ds,
        &config,
        dir.path(),
        BuildOptions {
            memory_bytes: 1 << 20,
            materialized: false,
            threads: 2,
            shards: 1,
        },
    )
    .unwrap();
    for q in queries(len) {
        let band = 5;
        let (got, _) = tree.exact_search_dtw(&q, band).unwrap();
        let mut best = (u64::MAX, f64::INFINITY);
        for p in 0..150u64 {
            let s = ds.get(p).unwrap();
            let d = dtw(&q, &s, band);
            if d < best.1 {
                best = (p, d);
            }
        }
        assert_eq!(got.pos, best.0);
        assert!((got.dist - best.1).abs() < 1e-6);
    }
}
