//! Update-path integration tests: B+-tree inserts, batch bulk inserts, LSM
//! ingestion and the ADS+ extension path all stay exact as data arrives.

use std::sync::Arc;

use coconut::baselines::{AdsIndex, AdsVariant, SerialScan};
use coconut::index::{BuildOptions, CoconutTree, IndexConfig, LsmCoconut};
use coconut::prelude::*;
use coconut::series::distance::znormalize;
use coconut::summary::SaxConfig;

const LEN: usize = 64;
const N: u64 = 600;

fn setup() -> (TempDir, Dataset, Vec<Vec<f32>>) {
    let dir = TempDir::new("updates").unwrap();
    let stats = Arc::new(IoStats::new());
    let path = dir.path().join("data.bin");
    let mut generator = RandomWalkGen::new(13);
    write_dataset(&path, &mut generator, N, LEN, &stats).unwrap();
    let dataset = Dataset::open(&path, stats).unwrap();
    let queries = (0..5u64)
        .map(|i| {
            let mut q = RandomWalkGen::new(900 + i).generate(LEN);
            znormalize(&mut q);
            q
        })
        .collect();
    (dir, dataset, queries)
}

fn config() -> IndexConfig {
    let mut c = IndexConfig::default_for_len(LEN);
    c.leaf_capacity = 32;
    c
}

#[test]
fn batched_inserts_match_full_rebuild() {
    let (dir, dataset, queries) = setup();
    let opts = BuildOptions {
        memory_bytes: 1 << 20,
        materialized: false,
        threads: 2,
        shards: 1,
    };

    // Reference: a tree bulk-loaded over everything at once.
    let reference = CoconutTree::build(&dataset, &config(), dir.path(), opts.clone()).unwrap();

    for batch_size in [1u64, 7, 50, 300] {
        let mut tree =
            CoconutTree::build_range(&dataset, 0..N / 2, &config(), dir.path(), opts.clone())
                .unwrap();
        let mut covered = N / 2;
        while covered < N {
            let hi = (covered + batch_size).min(N);
            let batch: Vec<Vec<f32>> = (covered..hi).map(|p| dataset.get(p).unwrap()).collect();
            tree.insert_batch(covered, &batch).unwrap();
            covered = hi;
        }
        assert_eq!(tree.len(), N, "batch={batch_size}");
        for q in &queries {
            let (a, _) = tree.exact_search(q).unwrap();
            let (b, _) = reference.exact_search(q).unwrap();
            assert_eq!(a.pos, b.pos, "batch={batch_size}");
        }
        // Leaves stay within capacity and at least half full after splits.
        assert!(
            tree.avg_fill() > 0.45,
            "batch={batch_size} fill={}",
            tree.avg_fill()
        );
    }
}

#[test]
fn lsm_and_btree_and_ads_agree_under_growth() {
    let (dir, dataset, queries) = setup();
    let opts = BuildOptions {
        memory_bytes: 1 << 20,
        materialized: false,
        threads: 2,
        shards: 1,
    };
    let sax = SaxConfig::default_for_len(LEN);

    let mut tree =
        CoconutTree::build_range(&dataset, 0..200, &config(), dir.path(), opts.clone()).unwrap();
    let lsm = LsmCoconut::new(config(), opts, dir.path()).unwrap();
    lsm.set_max_runs(2);
    lsm.ingest_upto(&dataset, 200).unwrap();
    let mut ads = AdsIndex::build_upto(
        &dataset,
        sax,
        32,
        1 << 20,
        dir.path(),
        AdsVariant::Plus,
        2,
        200,
    )
    .unwrap();

    let mut covered = 200u64;
    for step in 0..4 {
        let hi = (covered + 100).min(N);
        let batch: Vec<Vec<f32>> = (covered..hi).map(|p| dataset.get(p).unwrap()).collect();
        tree.insert_batch(covered, &batch).unwrap();
        lsm.ingest_upto(&dataset, hi).unwrap();
        ads.extend_to(hi).unwrap();
        covered = hi;

        // All three must agree with a scan over the covered prefix. Build
        // the truth by scanning only the covered range via the full scan
        // (queries are over the whole dataset once covered == N).
        if covered == N {
            let scan = SerialScan::new(&dataset);
            for q in &queries {
                let (truth, _) = scan.exact(q).unwrap();
                assert_eq!(
                    tree.exact_search(q).unwrap().0.pos,
                    truth.pos,
                    "step {step}"
                );
                assert_eq!(lsm.exact(q).unwrap().0.pos, truth.pos, "step {step}");
                assert_eq!(ads.exact_search(q).unwrap().0.pos, truth.pos, "step {step}");
            }
        } else {
            // Before full coverage the three indexes must agree with each
            // other (they cover the same prefix).
            for q in &queries {
                let a = tree.exact_search(q).unwrap().0;
                let b = lsm.exact(q).unwrap().0;
                let c = ads.exact_search(q).unwrap().0;
                assert_eq!(a.pos, b.pos, "step {step}");
                assert_eq!(a.pos, c.pos, "step {step}");
            }
        }
    }
}

#[test]
fn single_inserts_preserve_structure_invariants() {
    let (dir, dataset, _) = setup();
    let opts = BuildOptions {
        memory_bytes: 1 << 20,
        materialized: false,
        threads: 1,
        shards: 1,
    };
    let mut tree = CoconutTree::build_range(&dataset, 0..100, &config(), dir.path(), opts).unwrap();
    let before = tree.contiguity();
    assert_eq!(before, 1.0);
    for pos in 100..300u64 {
        let s = dataset.get(pos).unwrap();
        tree.insert(pos, &s).unwrap();
        assert_eq!(tree.len(), pos + 1);
    }
    // Splits happened; contiguity degraded but fill stays reasonable.
    assert!(tree.contiguity() < 1.0);
    assert!(tree.avg_fill() >= 0.45, "fill {}", tree.avg_fill());
    // The tree still answers exactly.
    let scan = SerialScan::new(&dataset);
    let member = dataset.get(250).unwrap();
    let (truth, _) = scan.exact(&member).unwrap();
    let (got, _) = tree.exact_search(&member).unwrap();
    assert_eq!(got.pos, truth.pos);
    assert!(got.dist < 1e-4);
}
