//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the small slice of the rand 0.8 API the workspace uses:
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`] for the primitive types, and
//! [`rngs::StdRng`]. The generator is xoshiro256++ seeded through SplitMix64
//! — deterministic per seed, which is all the data generators require.
//! Replace with the real crate when a registry is available.

/// A source of randomness: the subset of `rand::RngCore` we need.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Types that can be sampled uniformly from an RNG (the `Standard`
/// distribution of the real crate: floats in `[0, 1)`, integers over their
/// full range).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// The subset of `rand::Rng` the workspace uses.
pub trait Rng: RngCore {
    /// Sample a value from the standard distribution of its type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample in `[low, high)` for `u64` ranges.
    fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        let span = range.end - range.start;
        assert!(span > 0, "cannot sample from empty range");
        // Multiply-shift rejection-free mapping is fine for test workloads.
        range.start + (((self.next_u64() as u128 * span as u128) >> 64) as u64)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic PRNG: xoshiro256++ seeded via SplitMix64.
    ///
    /// Not the real `StdRng` (ChaCha12) — statistical quality is more than
    /// adequate for the synthetic data generators, and determinism per seed
    /// is preserved, which is the property the workspace relies on.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn floats_land_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = r.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut r = StdRng::seed_from_u64(2);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
