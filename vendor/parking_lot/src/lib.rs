//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API
//! (`lock()`/`read()`/`write()` return guards directly, not `Result`s).
//! A poisoned std lock means a thread panicked while holding it; tests
//! surface that panic themselves, so the wrappers recover the inner guard
//! rather than propagating poison. Replace with the real crate when a
//! registry is available.

use std::fmt;
use std::sync::{self, PoisonError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with parking_lot's infallible `lock()`.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock with parking_lot's infallible `read()`/`write()`.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new lock guarding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(vec![1, 2, 3]);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a, *b);
        drop((a, b));
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
