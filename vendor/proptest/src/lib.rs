//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the slice of the proptest 1.x API the workspace's property
//! tests use: the [`proptest!`] macro, [`strategy::Strategy`] with
//! `prop_map`, [`arbitrary::any`], numeric-range and tuple strategies,
//! [`collection::vec`], [`test_runner::ProptestConfig`], and the
//! `prop_assert*` macros.
//!
//! Differences from the real crate, deliberately accepted for an offline
//! test environment:
//!
//! * **No shrinking.** A failing case panics with the assertion message and
//!   the case number; inputs are not minimized.
//! * **Deterministic seeding.** Case `i` of test `t` always sees the same
//!   inputs (seeded from `fnv(t) ⊕ i`), so failures reproduce exactly.
//! * Only the strategies listed above exist.
//!
//! Replace with the real crate when a registry is available.

pub mod test_runner {
    /// Deterministic per-case random source (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for case number `case` of the test named `name`.
        pub fn for_case(name: &str, case: u64) -> Self {
            // FNV-1a over the test name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.as_bytes() {
                h ^= *b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform `usize` in `[lo, hi]` (inclusive).
        pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
            debug_assert!(lo <= hi);
            let span = (hi - lo) as u128 + 1;
            lo + ((self.next_u64() as u128 * span) >> 64) as usize
        }
    }

    /// Runner configuration; only `cases` is meaningful in the stub.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(256);
            ProptestConfig { cases }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating random values of `Self::Value`.
    ///
    /// Unlike the real crate there is no intermediate `ValueTree`: `new_value`
    /// produces the final value directly, and nothing shrinks.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Generate one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    self.start.wrapping_add(((rng.next_u64() as u128 * span) >> 64) as $t)
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128) - (lo as u128) + 1;
                    lo.wrapping_add(((rng.next_u64() as u128 * span) >> 64) as $t)
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let v = self.start + (rng.unit_f64() as $t) * (self.end - self.start);
                    // f64->$t rounding can land exactly on the excluded
                    // upper bound; step back to the largest in-range value.
                    if v >= self.end {
                        self.end.next_down()
                    } else {
                        v
                    }
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            // Finite, roughly symmetric values; real proptest also emits
            // NaN/Inf, but the workspace's properties assume finite input.
            ((rng.unit_f64() - 0.5) * 2e6) as f32
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            (rng.unit_f64() - 0.5) * 2e12
        }
    }

    /// Strategy generating arbitrary values of `T`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for "any value of type `T`".
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.size.min, self.size.max);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// A strategy producing vectors of `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert a condition inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases as u64 {
                let mut rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), case);
                $(
                    let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut rng);
                )+
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn vec_lengths_respect_bounds(
            v in crate::collection::vec(any::<u8>(), 3..=7),
            w in crate::collection::vec(0u8..16, 4),
        ) {
            prop_assert!((3..=7).contains(&v.len()));
            prop_assert_eq!(w.len(), 4);
            prop_assert!(w.iter().all(|&x| x < 16));
        }

        #[test]
        fn ranges_stay_in_bounds(
            x in 2usize..40,
            y in 0usize..=64,
            f in -1000.0f32..1000.0,
            pair in (any::<u64>(), any::<bool>()),
        ) {
            prop_assert!((2..40).contains(&x));
            prop_assert!(y <= 64);
            prop_assert!((-1000.0..1000.0).contains(&f));
            let _ = pair;
        }

        #[test]
        fn prop_map_applies(
            s in crate::collection::vec(any::<u16>(), 1..10).prop_map(|v| v.len()),
        ) {
            prop_assert!((1..10).contains(&s));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(any::<u64>(), 0..50);
        let mut a = crate::test_runner::TestRng::for_case("t", 3);
        let mut b = crate::test_runner::TestRng::for_case("t", 3);
        assert_eq!(strat.new_value(&mut a), strat.new_value(&mut b));
    }
}
