//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion 0.5 API the workspace's benches
//! use — `criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`/`bench_with_input`, `BenchmarkId`, `Throughput`,
//! `black_box` — over a simple wall-clock harness: a warm-up pass followed
//! by `sample_size` timed samples, reporting the median per-iteration time.
//! No statistics, plots, or saved baselines. Replace with the real crate
//! when a registry is available.

use std::fmt::Write as _;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifies one benchmark within a group: a function name plus an
/// optional parameter rendered after a `/`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id like `"name/parameter"`.
    pub fn new<P: std::fmt::Display>(function_name: impl Into<String>, parameter: P) -> Self {
        let mut id = function_name.into();
        let _ = write!(id, "/{parameter}");
        BenchmarkId { id }
    }

    /// An id that is only a parameter (attached to the group name).
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into [`BenchmarkId`], so `bench_function` accepts plain
/// strings too.
pub trait IntoBenchmarkId {
    /// Convert to a concrete id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Units-of-work declaration used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times closures; handed to benchmark functions as `b`.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    warm_up_time: Duration,
}

impl Bencher {
    /// Run `routine` repeatedly, recording one timed sample per run after a
    /// warm-up period.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_up_until = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_up_until {
            black_box(routine());
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare work-per-iteration for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Override the measurement time (stored for API compatibility; the
    /// stub harness is sample-count driven).
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Override the warm-up time.
    pub fn warm_up_time(&mut self, dur: Duration) -> &mut Self {
        self.criterion.warm_up_time = dur;
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<ID: IntoBenchmarkId, F>(&mut self, id: ID, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
            warm_up_time: self.criterion.warm_up_time,
        };
        f(&mut b);
        self.report(&id, &b.samples);
        self
    }

    /// Benchmark a closure parameterized by `input`.
    pub fn bench_with_input<ID: IntoBenchmarkId, I: ?Sized, F>(
        &mut self,
        id: ID,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id.into_benchmark_id(), |b| f(b, input))
    }

    /// Finish the group (printing is per-benchmark; nothing left to do).
    pub fn finish(&mut self) {}

    fn report(&self, id: &BenchmarkId, samples: &[Duration]) {
        let mut sorted: Vec<Duration> = samples.to_vec();
        sorted.sort_unstable();
        let median = sorted.get(sorted.len() / 2).copied().unwrap_or_default();
        let mut line = format!(
            "{}/{}: median {:?} over {} samples",
            self.name,
            id.id,
            median,
            sorted.len()
        );
        if let Some(tp) = self.throughput {
            let secs = median.as_secs_f64().max(1e-12);
            match tp {
                Throughput::Elements(n) => {
                    let _ = write!(line, " ({:.0} elem/s)", n as f64 / secs);
                }
                Throughput::Bytes(n) => {
                    let _ = write!(line, " ({:.0} B/s)", n as f64 / secs);
                }
            }
        }
        println!("{line}");
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Set the target measurement time (accepted for API compatibility).
    pub fn measurement_time(self, _dur: Duration) -> Self {
        self
    }

    /// Set the warm-up time before sampling begins.
    pub fn warm_up_time(mut self, dur: Duration) -> Self {
        self.warm_up_time = dur;
        self
    }

    /// Set the default number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }

    /// Hook for `criterion_main!`; the stub reports as it runs.
    pub fn final_summary(&self) {}
}

/// Define a group of benchmark functions, optionally with a configured
/// `Criterion` instance.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate a `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default().warm_up_time(Duration::from_millis(1));
        let mut ran = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3).throughput(Throughput::Elements(10));
            g.bench_with_input(BenchmarkId::new("f", 1), &1u64, |b, &_n| {
                b.iter(|| ran += 1);
            });
            g.finish();
        }
        assert!(ran >= 3);
    }
}
