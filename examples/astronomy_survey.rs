//! Astronomy survey scenario: a growing archive of light-curve windows,
//! ingested in nightly batches through the LSM-style Coconut (the paper's
//! future-work proposal) while analysts query between batches.
//!
//! ```sh
//! cargo run --release --example astronomy_survey
//! ```

use std::sync::Arc;
use std::time::Instant;

use coconut::index::{BuildOptions, IndexConfig, LsmCoconut};
use coconut::prelude::*;
use coconut::series::dataset::DatasetWriter;
use coconut::series::distance::znormalize;
use coconut::series::gen::Generator;

fn main() -> coconut::storage::Result<()> {
    let dir = TempDir::new("astronomy")?;
    let stats = Arc::new(IoStats::new());
    let data_path = dir.path().join("survey.bin");
    let len = 256usize;
    let nights = 6u64;
    let per_night = 4_000u64;
    let total = nights * per_night;

    // The survey file grows night by night; here we pre-generate the whole
    // stream and reveal it in batches (observations arrive append-only).
    let mut generator = AstronomyGen::new(11);
    {
        let mut w = DatasetWriter::create(&data_path, len, true, Arc::clone(&stats))?;
        for _ in 0..total {
            let mut s = generator.generate(len);
            znormalize(&mut s);
            w.append(&s)?;
        }
        w.finish()?;
    }
    let dataset = Dataset::open(&data_path, Arc::clone(&stats))?;

    let config = IndexConfig::default_for_len(len);
    let lsm = LsmCoconut::new(config, BuildOptions::default(), dir.path())?;
    lsm.set_max_runs(3);

    // A target object whose behaviour we watch for (e.g. a known AGN flare
    // shape).
    let target = {
        let mut g = AstronomyGen::new(99);
        let mut q = g.generate(len);
        znormalize(&mut q);
        q
    };

    println!("night  ingested  runs  ingest_ms  query_ms  best_match(dist)");
    for night in 1..=nights {
        let t0 = Instant::now();
        lsm.ingest_upto(&dataset, night * per_night)?;
        let ingest_ms = t0.elapsed().as_secs_f64() * 1e3;

        let t0 = Instant::now();
        let (best, _) = lsm.exact(&target)?;
        let query_ms = t0.elapsed().as_secs_f64() * 1e3;
        println!(
            "{night:>5}  {:>8}  {:>4}  {ingest_ms:>9.1}  {query_ms:>8.1}  #{} ({:.3})",
            lsm.len(),
            lsm.run_count(),
            best.pos,
            best.dist
        );
    }

    // Let background compactions settle so the final run count is the
    // policy's steady state, then sanity-check against brute force.
    lsm.wait_for_compactions()?;
    let scan = SerialScan::new(&dataset);
    let (truth, _) = scan.exact(&target)?;
    let (lsm_best, _) = lsm.exact(&target)?;
    assert_eq!(truth.pos, lsm_best.pos);
    println!(
        "\nfinal archive: {} windows in {} runs, {} MiB of index",
        lsm.len(),
        lsm.run_count(),
        lsm.disk_bytes() >> 20
    );
    println!("LSM answer verified against a full serial scan.");
    Ok(())
}
