//! Quickstart: build a Coconut-Tree over a synthetic dataset and run
//! approximate + exact nearest-neighbor queries.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use coconut::prelude::*;

fn main() -> coconut::storage::Result<()> {
    // 1. Generate a dataset: 20,000 random-walk series of 256 points,
    //    z-normalized and written to a binary dataset file.
    let dir = TempDir::new("quickstart")?;
    let stats = Arc::new(IoStats::new());
    let data_path = dir.path().join("data.bin");
    let n = 20_000u64;
    let mut generator = RandomWalkGen::new(42);
    write_dataset(&data_path, &mut generator, n, 256, &stats)?;
    let dataset = Dataset::open(&data_path, Arc::clone(&stats))?;
    println!(
        "dataset: {} series x {} points ({} MiB raw)",
        dataset.len(),
        dataset.series_len(),
        dataset.payload_bytes() >> 20
    );

    // 2. Bulk-load a (non-materialized) Coconut-Tree: summarize, sort the
    //    sortable summarizations, pack leaves bottom-up.
    let config = coconut::index::IndexConfig::default_for_len(256);
    let t0 = std::time::Instant::now();
    let tree = coconut::index::CoconutTree::build(
        &dataset,
        &config,
        dir.path(),
        coconut::index::BuildOptions::default(),
    )?;
    println!(
        "built Coconut-Tree in {:.0} ms: {} leaves, height {}, fill {:.0}%, contiguity {:.0}%",
        t0.elapsed().as_secs_f64() * 1e3,
        tree.leaf_count(),
        tree.height(),
        tree.avg_fill() * 100.0,
        tree.contiguity() * 100.0
    );

    // 3. Query: approximate first (one leaf neighborhood), then exact
    //    (CoconutTreeSIMS — a pruned skip-sequential scan).
    let query = {
        let mut q = RandomWalkGen::new(7).generate(256);
        coconut::series::distance::znormalize(&mut q);
        q
    };
    let approx = tree.approximate_search(&query, 1)?;
    println!(
        "approximate answer: series #{} at distance {:.3}",
        approx.pos, approx.dist
    );

    let (exact, qstats) = tree.exact_search(&query)?;
    println!(
        "exact answer:       series #{} at distance {:.3} \
         (fetched {} of {} records, pruned {})",
        exact.pos, exact.dist, qstats.records_fetched, n, qstats.pruned
    );
    assert!(exact.dist <= approx.dist);

    // 4. k-NN (an extension beyond the paper).
    let (top5, _) = tree.exact_knn(&query, 5)?;
    println!("top-5 neighbors:");
    for (rank, a) in top5.iter().enumerate() {
        println!(
            "  {}. series #{} at distance {:.3}",
            rank + 1,
            a.pos,
            a.dist
        );
    }
    Ok(())
}
