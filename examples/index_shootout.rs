//! Index shootout: build every index in the paper over the same dataset
//! and compare construction time, size, occupancy and exact-query work —
//! a miniature of the paper's whole evaluation in one binary.
//!
//! ```sh
//! cargo run --release --example index_shootout
//! ```

use std::sync::Arc;
use std::time::Instant;

use coconut::baselines::{
    AdsIndex, AdsVariant, DsTree, Isax2Index, RTreeIndex, SerialScan, VerticalIndex,
};
use coconut::index::{BuildOptions, CoconutTree, CoconutTrie, IndexConfig};
use coconut::prelude::*;
use coconut::summary::SaxConfig;

fn main() -> coconut::storage::Result<()> {
    let dir = TempDir::new("shootout")?;
    let stats = Arc::new(IoStats::new());
    let data_path = dir.path().join("data.bin");
    let n = 10_000u64;
    let len = 128usize;
    let mut generator = RandomWalkGen::new(3);
    write_dataset(&data_path, &mut generator, n, len, &stats)?;
    let dataset = Dataset::open(&data_path, Arc::clone(&stats))?;

    let sax = SaxConfig::default_for_len(len);
    let config = IndexConfig {
        sax,
        leaf_capacity: 100,
        fill_factor: 1.0,
        internal_fanout: 64,
        split_policy: Default::default(),
    };
    let opts = BuildOptions {
        memory_bytes: 8 << 20,
        materialized: false,
        threads: 4,
        shards: 1,
    };
    let leaf = 100usize;
    let mem = 8u64 << 20;

    // Build everything through the common trait.
    let mut indexes: Vec<(Box<dyn SeriesIndex>, f64)> = Vec::new();
    macro_rules! timed {
        ($build:expr) => {{
            let t0 = Instant::now();
            let idx: Box<dyn SeriesIndex> = Box::new($build);
            (idx, t0.elapsed().as_secs_f64())
        }};
    }
    indexes.push(timed!(CoconutTree::build(
        &dataset,
        &config,
        dir.path(),
        opts.clone()
    )?));
    indexes.push(timed!(CoconutTree::build(
        &dataset,
        &config,
        dir.path(),
        opts.clone().materialized()
    )?));
    indexes.push(timed!(CoconutTrie::build(
        &dataset,
        &config,
        dir.path(),
        opts.clone()
    )?));
    indexes.push(timed!(CoconutTrie::build(
        &dataset,
        &config,
        dir.path(),
        opts.clone().materialized()
    )?));
    indexes.push(timed!(AdsIndex::build(
        &dataset,
        sax,
        leaf,
        mem,
        dir.path(),
        AdsVariant::Plus,
        4
    )?));
    indexes.push(timed!(AdsIndex::build(
        &dataset,
        sax,
        leaf,
        mem,
        dir.path(),
        AdsVariant::Full,
        4
    )?));
    indexes.push(timed!(RTreeIndex::build(
        &dataset,
        sax,
        leaf,
        false,
        dir.path()
    )?));
    indexes.push(timed!(RTreeIndex::build(
        &dataset,
        sax,
        leaf,
        true,
        dir.path()
    )?));
    indexes.push(timed!(Isax2Index::build(
        &dataset,
        sax,
        leaf,
        mem,
        dir.path()
    )?));
    indexes.push(timed!(DsTree::build(&dataset, leaf, dir.path())?));
    indexes.push(timed!(VerticalIndex::build(&dataset, dir.path())?));

    // Ground truth for the query comparison.
    let scan = SerialScan::new(&dataset);
    let query = {
        let mut g = RandomWalkGen::new(321);
        let mut q = g.generate(len);
        coconut::series::distance::znormalize(&mut q);
        q
    };
    let (truth, _) = scan.exact(&query)?;

    println!(
        "{:>10}  {:>9}  {:>9}  {:>7}  {:>5}  {:>9}  {:>8}",
        "index", "build", "size", "leaves", "fill", "exact_ms", "fetched"
    );
    for (idx, build_s) in &indexes {
        let t0 = Instant::now();
        let (ans, qstats) = idx.exact(&query)?;
        let query_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(ans.pos, truth.pos, "{} disagrees with the scan", idx.name());
        println!(
            "{:>10}  {:>8.0}ms  {:>6}KiB  {:>7}  {:>4.0}%  {:>9.2}  {:>8}",
            idx.name(),
            build_s * 1e3,
            idx.disk_bytes() >> 10,
            idx.leaf_count(),
            idx.avg_leaf_fill() * 100.0,
            query_ms,
            qstats.records_fetched
        );
    }
    println!(
        "\nall {} indexes returned the same exact nearest neighbor ✓",
        indexes.len()
    );
    Ok(())
}
