//! Seismic monitoring scenario: index heavily overlapping sliding windows
//! of a continuous seismic signal, then search for windows similar to a
//! "template" event — the paper's motivating IRIS use case, at laptop
//! scale.
//!
//! Demonstrates: dense (hard) data, materialized vs non-materialized query
//! cost, and the occupancy difference between prefix and median splitting.
//!
//! ```sh
//! cargo run --release --example seismic_monitor
//! ```

use std::sync::Arc;
use std::time::Instant;

use coconut::index::{BuildOptions, CoconutTree, CoconutTrie, IndexConfig};
use coconut::prelude::*;

fn main() -> coconut::storage::Result<()> {
    let dir = TempDir::new("seismic")?;
    let stats = Arc::new(IoStats::new());
    let data_path = dir.path().join("seismic.bin");

    // A year of "sensor" data, 256-point windows sliding by 4 samples —
    // consecutive windows share 98% of their points, so the dataset is
    // dense and pruning is hard (the paper's observation on real data).
    let n = 30_000u64;
    let len = 256usize;
    let mut generator = SeismicGen::new(2024);
    write_dataset(&data_path, &mut generator, n, len, &stats)?;
    let dataset = Dataset::open(&data_path, Arc::clone(&stats))?;
    println!("seismic archive: {n} overlapping windows of {len} samples");

    let config = IndexConfig::default_for_len(len);

    // Build both Coconut variants to compare occupancy (the paper's
    // Figure 8c story).
    let tree = CoconutTree::build(&dataset, &config, dir.path(), BuildOptions::default())?;
    let trie = CoconutTrie::build(&dataset, &config, dir.path(), BuildOptions::default())?;
    println!(
        "Coconut-Tree: {:>5} leaves, fill {:>3.0}%   (median splits pack densely)",
        tree.leaf_count(),
        tree.avg_fill() * 100.0
    );
    println!(
        "Coconut-Trie: {:>5} leaves, fill {:>3.0}%   (prefix splits cannot balance)",
        trie.leaf_count(),
        trie.avg_fill() * 100.0
    );

    // The "template": a fresh event from the same process. An analyst asks:
    // did we record anything like this before?
    let template = {
        let mut g = SeismicGen::new(777);
        let mut q = g.generate(len);
        coconut::series::distance::znormalize(&mut q);
        q
    };

    let t0 = Instant::now();
    let (hit, qstats) = tree.exact_search(&template)?;
    let indexed = t0.elapsed();
    println!(
        "\nindexed search:  window #{} at distance {:.3} in {:.1} ms \
         ({} raw fetches, {} pruned)",
        hit.pos,
        hit.dist,
        indexed.as_secs_f64() * 1e3,
        qstats.records_fetched,
        qstats.pruned
    );

    // Brute force for comparison.
    let scan = SerialScan::new(&dataset);
    let t0 = Instant::now();
    let (truth, sstats) = scan.exact(&template)?;
    let brute = t0.elapsed();
    println!(
        "serial scan:     window #{} at distance {:.3} in {:.1} ms ({} fetches)",
        truth.pos,
        truth.dist,
        brute.as_secs_f64() * 1e3,
        sstats.records_fetched
    );
    assert_eq!(hit.pos, truth.pos, "index must agree with the scan");

    // Dense data: neighbors of the best hit are near-duplicates (the
    // overlapping windows). Show the top matches.
    let (matches, _) = tree.exact_knn(&template, 5)?;
    println!("\nclosest recorded windows (note the adjacent, overlapping positions):");
    for m in &matches {
        println!("  window #{:>6} at distance {:.3}", m.pos, m.dist);
    }
    Ok(())
}
