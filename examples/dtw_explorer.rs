//! DTW exploration: exact nearest-neighbor search under Dynamic Time
//! Warping on a Coconut-Tree, showing where warping changes the answer
//! relative to Euclidean distance and what each pruning layer saves.
//!
//! ```sh
//! cargo run --release --example dtw_explorer
//! ```

use std::sync::Arc;
use std::time::Instant;

use coconut::index::{BuildOptions, CoconutTree, IndexConfig};
use coconut::prelude::*;
use coconut::series::distance::znormalize;
use coconut::series::dtw::dtw;
use coconut::series::gen::Generator;

fn main() -> coconut::storage::Result<()> {
    let dir = TempDir::new("dtw")?;
    let stats = Arc::new(IoStats::new());
    let data_path = dir.path().join("data.bin");
    let n = 8_000u64;
    let len = 128usize;
    let mut generator = SeismicGen::with_stride(5, 16);
    write_dataset(&data_path, &mut generator, n, len, &stats)?;
    let dataset = Dataset::open(&data_path, Arc::clone(&stats))?;

    let config = IndexConfig::default_for_len(len);
    let tree = CoconutTree::build(&dataset, &config, dir.path(), BuildOptions::default())?;
    println!("indexed {n} seismic windows of {len} samples\n");

    // A query that is a time-shifted version of signals in the archive:
    // exactly the case where DTW shines over Euclidean distance.
    let query = {
        let mut g = SeismicGen::with_stride(5, 16);
        let mut q = g.generate(len);
        // Shift by dropping the first samples and extending the tail.
        q.rotate_left(4);
        znormalize(&mut q);
        q
    };

    println!(
        "{:<10} {:>10} {:>12} {:>10} {:>10}",
        "metric", "band", "answer", "dist", "time"
    );
    let t0 = Instant::now();
    let (ed, _) = tree.exact_search(&query)?;
    println!(
        "{:<10} {:>10} {:>12} {:>10.4} {:>8.1}ms",
        "euclidean",
        "-",
        format!("#{}", ed.pos),
        ed.dist,
        t0.elapsed().as_secs_f64() * 1e3
    );
    for band in [2usize, 5, 10, 20] {
        let t0 = Instant::now();
        let (ans, qstats) = tree.exact_search_dtw(&query, band)?;
        println!(
            "{:<10} {:>10} {:>12} {:>10.4} {:>8.1}ms   ({} fetched, {} pruned by index bound)",
            "dtw",
            band,
            format!("#{}", ans.pos),
            ans.dist,
            t0.elapsed().as_secs_f64() * 1e3,
            qstats.records_fetched,
            qstats.pruned
        );
        // DTW distance can only shrink as the band widens.
        assert!(ans.dist <= ed.dist + 1e-9);
    }

    // Verify the widest-band answer against brute force.
    let band = 20;
    let (fast, _) = tree.exact_search_dtw(&query, band)?;
    let mut best = (u64::MAX, f64::INFINITY);
    let t0 = Instant::now();
    for p in 0..n {
        let s = dataset.get(p)?;
        let d = dtw(&query, &s, band);
        if d < best.1 {
            best = (p, d);
        }
    }
    println!(
        "\nbrute-force DTW over all {n} series: #{} at {:.4} in {:.0} ms (index agreed: {})",
        best.0,
        best.1,
        t0.elapsed().as_secs_f64() * 1e3,
        fast.pos == best.0
    );
    assert_eq!(fast.pos, best.0);
    Ok(())
}
